//! Layered compile-once CNF sharing.
//!
//! A [`SharedCnf`] is an immutable CNF formula stored as a chain of
//! reference-counted [`CnfLayer`]s. It is built once with a [`CnfBuilder`]
//! and then attached to any number of solvers via
//! [`crate::Solver::attach_shared`]; the attached solvers read clause
//! literals straight out of the (`Arc`'d) layer arenas and keep only their
//! tiny per-clause watch metadata private. This is what lets a portfolio
//! of cube workers solve the same compiled query without each
//! re-translating — or even copying — the clause database.
//!
//! The layering is what makes compilation incremental: a builder created
//! with [`CnfBuilder::extending`] continues variable numbering where the
//! base formula left off and records only the *new* clauses, so the built
//! [`SharedCnf`] shares every base layer by `Arc` with the formula it
//! extends. A synthesis sweep compiles the structural skeleton once and
//! derives each (bound, axiom) query's formula as a one-layer extension.
//!
//! Each layer carries a provenance tag ([`CnfLayer::is_skeleton`]): `true`
//! for layers encoding the axiom-independent structural skeleton, `false`
//! for axiom-specific (or monolithic) layers. Solvers propagate the tag
//! through conflict analysis so that learnt clauses implied by the
//! skeleton alone can be reused across queries sharing the same skeleton
//! chain — see [`SharedCnf::skeleton_fingerprints`] and the clause vault
//! in the portfolio crate.
//!
//! Orthogonally, a layer can be tagged *definitional*
//! ([`CnfLayer::is_definitional`]): every clause in it is a pure Tseitin
//! naming constraint — its freshest (maximum) variable is a gate the
//! clause helps define, and gates are functions of strictly older
//! variables. A definitional layer asserts nothing by itself, so a solver
//! may defer watching its clauses gate by gate until the query actually
//! references them ([`crate::Solver::attach_shared_lazy`]). The cone
//! metadata a lazy solver needs is precomputed here: each layer owns the
//! contiguous variable range `[prev.num_vars(), num_vars())`
//! ([`SharedCnf::layer_var_range`]) and the contiguous clause range
//! [`SharedCnf::layer_clause_range`] ("which cone does this variable
//! belong to" is a single binary search, [`SharedCnf::layer_of_var`]),
//! and a definitional layer additionally indexes, per gate variable, the
//! clauses and units defining that gate ([`CnfLayer::gate_defs`]) so
//! activation can walk exactly the referenced sub-DAG of a cone instead
//! of waking whole layers.

use crate::types::{Lit, Var};
use std::sync::Arc;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold_u64(mut h: u64, x: u64) -> u64 {
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One immutable layer of clauses in a [`SharedCnf`] chain.
///
/// Invariants (established by [`CnfBuilder`]): every stored non-unit
/// clause has at least two distinct, non-complementary literals.
#[derive(Debug)]
pub struct CnfLayer {
    /// Total variables allocated up to and including this layer.
    num_vars: usize,
    /// Flat literal arena for this layer's non-unit clauses.
    lits: Vec<Lit>,
    /// `(start, len)` of each clause inside this layer's `lits`.
    ranges: Vec<(u32, u32)>,
    /// Unit clauses contributed by this layer.
    units: Vec<Lit>,
    /// `true` when this layer encodes shared structural skeleton.
    skeleton: bool,
    /// `true` when every clause of this layer is a Tseitin naming
    /// constraint over the layer's own gate variables (a definition cone):
    /// the layer asserts nothing and is eligible for lazy watching.
    definitional: bool,
    /// First variable index owned by this layer (`num_vars` of the
    /// previous layer in the chain).
    first_var: usize,
    /// Definitional layers only: CSR index from layer-own gate variable to
    /// the items (clauses/units) defining it. `def_start.len()` is the
    /// layer's own variable count + 1; `def_items[def_start[v-first_var]..
    /// def_start[v-first_var+1]]` encodes a layer-local non-unit clause
    /// index as `ci << 1` and a layer-local unit index as `ui << 1 | 1`.
    /// Empty for non-definitional layers.
    def_start: Vec<u32>,
    def_items: Vec<u32>,
    /// Content fingerprint of the whole chain ending at this layer.
    fingerprint: u64,
}

/// One item defining a gate variable of a definitional [`CnfLayer`]: a
/// layer-local non-unit clause index, or a unit literal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GateDef {
    /// Index into the layer's non-unit clauses (layer-local; add the
    /// layer's flat clause offset to address the solver's arena).
    Clause(usize),
    /// A unit clause (e.g. the constant-true gate's pin).
    Unit(Lit),
}

impl CnfLayer {
    /// Non-unit clauses contributed by this layer alone.
    pub fn num_clauses(&self) -> usize {
        self.ranges.len()
    }

    /// `true` when this layer encodes shared structural skeleton.
    pub fn is_skeleton(&self) -> bool {
        self.skeleton
    }

    /// `true` when this layer is a pure definition cone (see
    /// [`CnfBuilder::build_layer`]): a lazy solver may skip its watchers
    /// until one of its variables is referenced.
    pub fn is_definitional(&self) -> bool {
        self.definitional
    }

    /// Unit clauses contributed by this layer alone.
    pub fn units(&self) -> &[Lit] {
        &self.units
    }

    /// Total variables allocated up to and including this layer (the
    /// cumulative count, not the layer's own).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// First variable index owned by this layer.
    pub fn first_var(&self) -> usize {
        self.first_var
    }

    /// The items defining gate variable `v` of a definitional layer: the
    /// clauses whose freshest variable is `v`, in layer order. Empty for
    /// non-definitional layers, input variables (which have no defining
    /// clauses), and variables outside the layer.
    pub fn gate_defs(&self, v: Var) -> impl Iterator<Item = GateDef> + '_ {
        let i = v.index().wrapping_sub(self.first_var);
        let range = match (self.def_start.get(i), self.def_start.get(i + 1)) {
            (Some(&lo), Some(&hi)) => lo as usize..hi as usize,
            _ => 0..0,
        };
        self.def_items[range].iter().map(|&item| {
            if item & 1 == 0 {
                GateDef::Clause((item >> 1) as usize)
            } else {
                GateDef::Unit(self.units[(item >> 1) as usize])
            }
        })
    }

    /// The cumulative chain fingerprint ending at this layer. Equal
    /// fingerprints imply literally identical clause sets over identical
    /// variable indices, which is what makes cross-query clause reuse
    /// keyed on it sound.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// An immutable shared CNF formula: a chain of [`CnfLayer`]s plus the
/// flattened indexing a solver needs to address clauses by a single dense
/// index. Cloning is cheap for the clause data (layers are shared by
/// `Arc`).
#[derive(Debug, Clone, Default)]
pub struct SharedCnf {
    layers: Vec<Arc<CnfLayer>>,
    /// `clause_start[i]` = number of non-unit clauses in layers `0..i`.
    clause_start: Vec<usize>,
    num_vars: usize,
    num_clauses: usize,
    num_lits: usize,
    /// All unit clauses of the chain, in layer order.
    units: Vec<Lit>,
    /// Per-unit provenance, aligned with `units`.
    unit_skeleton: Vec<bool>,
    ok: bool,
}

impl SharedCnf {
    /// Number of variables the formula was built over.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of non-unit clauses in the arena.
    pub fn num_clauses(&self) -> usize {
        self.num_clauses
    }

    /// The unit clauses, as literals.
    pub fn units(&self) -> &[Lit] {
        &self.units
    }

    /// Whether unit `i` (indexing [`SharedCnf::units`]) comes from a
    /// skeleton layer.
    pub fn unit_is_skeleton(&self, i: usize) -> bool {
        self.unit_skeleton[i]
    }

    /// `false` if an empty clause was added: the formula is trivially
    /// unsatisfiable.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// The literals of clause `i`.
    #[inline]
    pub fn clause(&self, i: usize) -> &[Lit] {
        let li = self.layer_of(i);
        let layer = &self.layers[li];
        let (start, len) = layer.ranges[i - self.clause_start[li]];
        &layer.lits[start as usize..(start + len) as usize]
    }

    /// Whether clause `i` comes from a skeleton layer.
    pub fn clause_is_skeleton(&self, i: usize) -> bool {
        self.layers[self.layer_of(i)].skeleton
    }

    #[inline]
    fn layer_of(&self, clause: usize) -> usize {
        debug_assert!(clause < self.num_clauses);
        self.clause_start.partition_point(|&s| s <= clause) - 1
    }

    /// The index of the layer that owns (non-unit) clause `i`.
    #[inline]
    pub fn layer_of_clause(&self, i: usize) -> usize {
        self.layer_of(i)
    }

    /// The index of the layer that owns variable `v` — layers own
    /// contiguous, ascending variable ranges, so this is a binary search.
    #[inline]
    pub fn layer_of_var(&self, v: Var) -> usize {
        self.layers.partition_point(|l| l.num_vars <= v.index())
    }

    /// The half-open variable range `[lo, hi)` owned by layer `li`.
    pub fn layer_var_range(&self, li: usize) -> std::ops::Range<usize> {
        let lo = if li == 0 {
            0
        } else {
            self.layers[li - 1].num_vars
        };
        lo..self.layers[li].num_vars
    }

    /// The half-open flat clause-index range owned by layer `li`.
    pub fn layer_clause_range(&self, li: usize) -> std::ops::Range<usize> {
        let lo = self.clause_start[li];
        lo..lo + self.layers[li].ranges.len()
    }

    /// Total literal count across all arena clauses.
    pub fn num_lits(&self) -> usize {
        self.num_lits
    }

    /// Number of layers in the chain.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The layers, oldest first.
    pub fn layers(&self) -> &[Arc<CnfLayer>] {
        &self.layers
    }

    /// Content fingerprint of the whole chain (see
    /// [`CnfLayer::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.layers.last().map_or(FNV_OFFSET, |l| l.fingerprint)
    }

    /// Cumulative fingerprints of every prefix of the maximal skeleton
    /// prefix of the chain: `[fp(L0), fp(L0·L1), …]` over the leading run
    /// of skeleton-tagged layers. Two formulas sharing a fingerprint in
    /// this list agree clause-for-clause and variable-for-variable on that
    /// prefix, so skeleton-pure learnt clauses published under it are
    /// sound imports for both.
    pub fn skeleton_fingerprints(&self) -> Vec<u64> {
        self.layers
            .iter()
            .take_while(|l| l.skeleton)
            .map(|l| l.fingerprint)
            .collect()
    }

    /// The definitional cone of `roots`: every variable reachable from a
    /// root by repeatedly following [`CnfLayer::gate_defs`] through
    /// definitional layers. Variables owned by non-definitional layers are
    /// included but not expanded (they have no defining clauses to chase),
    /// exactly mirroring the closure [`crate::Solver::activate_vars`]
    /// computes when it wakes a cone. The result is deduplicated; its
    /// order is a deterministic function of the root order.
    pub fn cone_vars(&self, roots: impl IntoIterator<Item = Var>) -> Vec<Var> {
        let mut seen = vec![false; self.num_vars];
        let mut out = Vec::new();
        let mut worklist: Vec<Var> = Vec::new();
        for r in roots {
            if r.index() < self.num_vars && !seen[r.index()] {
                seen[r.index()] = true;
                worklist.push(r);
            }
        }
        while let Some(v) = worklist.pop() {
            out.push(v);
            let li = self.layer_of_var(v);
            let layer = &self.layers[li];
            if !layer.definitional {
                continue;
            }
            let clause_base = self.clause_start[li];
            for def in layer.gate_defs(v) {
                match def {
                    GateDef::Unit(u) => {
                        let w = u.var();
                        if !seen[w.index()] {
                            seen[w.index()] = true;
                            worklist.push(w);
                        }
                    }
                    GateDef::Clause(local) => {
                        for &l in self.clause(clause_base + local) {
                            let w = l.var();
                            if !seen[w.index()] {
                                seen[w.index()] = true;
                                worklist.push(w);
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Builds a [`SharedCnf`], mirroring the clause normalization that
/// [`crate::Solver::add_clause`] performs (sorting, duplicate removal,
/// tautology elimination) minus the assignment-dependent simplification a
/// live solver would also apply.
#[derive(Debug, Default)]
pub struct CnfBuilder {
    base: Vec<Arc<CnfLayer>>,
    num_vars: usize,
    lits: Vec<Lit>,
    ranges: Vec<(u32, u32)>,
    units: Vec<Lit>,
    ok: bool,
}

impl CnfBuilder {
    /// Creates an empty builder (fresh chain).
    pub fn new() -> CnfBuilder {
        CnfBuilder {
            ok: true,
            ..CnfBuilder::default()
        }
    }

    /// A builder that extends `base`: variable numbering continues where
    /// `base` left off, and the built formula shares every one of `base`'s
    /// layers by `Arc`, adding exactly one new layer holding the clauses
    /// added here.
    pub fn extending(base: &SharedCnf) -> CnfBuilder {
        CnfBuilder {
            base: base.layers.clone(),
            num_vars: base.num_vars,
            ok: base.ok,
            ..CnfBuilder::default()
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Number of variables allocated so far (including any base chain).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of non-unit clauses added to this builder's own layer.
    pub fn num_clauses(&self) -> usize {
        self.ranges.len()
    }

    /// Adds a clause. Returns `false` if the clause was empty (the formula
    /// is now trivially unsatisfiable).
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        let mut ls: Vec<Lit> = lits.into_iter().collect();
        ls.sort();
        ls.dedup();
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return true; // tautology: l and ¬l both present
            }
        }
        match ls.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.units.push(ls[0]);
                true
            }
            _ => {
                self.ranges.push((self.lits.len() as u32, ls.len() as u32));
                self.lits.extend(ls);
                true
            }
        }
    }

    /// Finalizes the formula, tagging the new layer non-skeleton.
    pub fn build(self) -> SharedCnf {
        self.build_layer(false, false)
    }

    /// Finalizes the formula, tagging the newly built layer's provenance:
    /// `skeleton == true` marks it as axiom-independent structural
    /// skeleton, eligible to anchor cross-query clause reuse.
    pub fn build_tagged(self, skeleton: bool) -> SharedCnf {
        self.build_layer(skeleton, false)
    }

    /// Finalizes the formula with full provenance. `definitional == true`
    /// additionally promises that every clause of the new layer is a
    /// Tseitin naming constraint — its freshest (maximum) variable is one
    /// of the layer's own gate variables, defined as a function of
    /// strictly older variables — so the layer asserts nothing by itself
    /// and a lazy solver may defer watching it, gate by gate (see
    /// [`crate::Solver::attach_shared_lazy`]). The promise is checked
    /// structurally here (every clause must be owned by a layer-own
    /// variable); the deeper functional property is the encoder's contract
    /// — `litsynth-relalg` is the only producer.
    ///
    /// # Panics
    ///
    /// Panics if `definitional` is set and some clause of the new layer
    /// contains no layer-own variable.
    pub fn build_layer(self, skeleton: bool, definitional: bool) -> SharedCnf {
        let first_var = self.base.last().map_or(0, |l| l.num_vars);
        let (def_start, def_items) = if definitional {
            let own = self.num_vars - first_var;
            let owner_of = |lits: &[Lit]| -> usize {
                let v = lits.iter().map(|l| l.var().index()).max().unwrap_or(0);
                assert!(
                    v >= first_var && !lits.is_empty(),
                    "definitional layer clause owns no layer variable"
                );
                v - first_var
            };
            let mut counts = vec![0u32; own + 1];
            for &(start, len) in &self.ranges {
                counts[owner_of(&self.lits[start as usize..(start + len) as usize])] += 1;
            }
            for &u in &self.units {
                counts[owner_of(std::slice::from_ref(&u))] += 1;
            }
            let mut def_start = vec![0u32; own + 1];
            for i in 0..own {
                def_start[i + 1] = def_start[i] + counts[i];
            }
            let mut next = def_start.clone();
            let mut def_items = vec![0u32; def_start[own] as usize];
            // Fill in layer order per owner: clauses first, then units —
            // activation replays them in this order.
            for (ci, &(start, len)) in self.ranges.iter().enumerate() {
                let o = owner_of(&self.lits[start as usize..(start + len) as usize]);
                def_items[next[o] as usize] = (ci as u32) << 1;
                next[o] += 1;
            }
            for (ui, &u) in self.units.iter().enumerate() {
                let o = owner_of(std::slice::from_ref(&u));
                def_items[next[o] as usize] = (ui as u32) << 1 | 1;
                next[o] += 1;
            }
            (def_start, def_items)
        } else {
            (Vec::new(), Vec::new())
        };
        let mut fp = self.base.last().map_or(FNV_OFFSET, |l| l.fingerprint);
        fp = fnv_fold_u64(fp, self.num_vars as u64);
        fp = fnv_fold_u64(fp, skeleton as u64 | (definitional as u64) << 1);
        for &u in &self.units {
            fp = fnv_fold_u64(fp, 1 + u.code() as u64);
        }
        fp = fnv_fold_u64(fp, u64::MAX); // separator: units vs clauses
        for &(start, len) in &self.ranges {
            fp = fnv_fold_u64(fp, len as u64);
            for &l in &self.lits[start as usize..(start + len) as usize] {
                fp = fnv_fold_u64(fp, 1 + l.code() as u64);
            }
        }
        let layer = Arc::new(CnfLayer {
            num_vars: self.num_vars,
            lits: self.lits,
            ranges: self.ranges,
            units: self.units,
            skeleton,
            definitional,
            first_var,
            def_start,
            def_items,
            fingerprint: fp,
        });
        let mut layers = self.base;
        layers.push(layer);
        let mut clause_start = Vec::with_capacity(layers.len());
        let mut num_clauses = 0usize;
        let mut num_lits = 0usize;
        let mut units = Vec::new();
        let mut unit_skeleton = Vec::new();
        for l in &layers {
            clause_start.push(num_clauses);
            num_clauses += l.ranges.len();
            num_lits += l.lits.len();
            units.extend_from_slice(&l.units);
            unit_skeleton.extend(l.units.iter().map(|_| l.skeleton));
        }
        SharedCnf {
            num_vars: layers.last().map_or(0, |l| l.num_vars),
            layers,
            clause_start,
            num_clauses,
            num_lits,
            units,
            unit_skeleton,
            ok: self.ok,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_normalizes_clauses() {
        let mut b = CnfBuilder::new();
        let x = b.new_var();
        let y = b.new_var();
        assert!(b.add_clause([Lit::pos(x), Lit::neg(x)])); // tautology dropped
        assert!(b.add_clause([Lit::pos(y), Lit::pos(y)])); // dedups to a unit
        assert!(b.add_clause([Lit::pos(x), Lit::pos(y)]));
        let cnf = b.build();
        assert!(cnf.is_ok());
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(cnf.units(), &[Lit::pos(y)]);
        assert_eq!(cnf.clause(0), &[Lit::pos(x), Lit::pos(y)]);
    }

    #[test]
    fn empty_clause_marks_unsat() {
        let mut b = CnfBuilder::new();
        let _ = b.new_var();
        assert!(!b.add_clause([]));
        assert!(!b.build().is_ok());
    }

    #[test]
    fn extending_shares_base_layers_and_continues_var_numbering() {
        let mut b = CnfBuilder::new();
        let v0 = b.new_var();
        let v1 = b.new_var();
        b.add_clause([Lit::pos(v0), Lit::pos(v1)]);
        b.add_clause([Lit::neg(v0)]);
        let base = b.build_tagged(true);
        assert_eq!(base.num_layers(), 1);
        assert!(base.clause_is_skeleton(0));

        let mut e = CnfBuilder::extending(&base);
        let v2 = e.new_var();
        assert_eq!(v2.index(), 2, "numbering continues past the base");
        e.add_clause([Lit::neg(v1), Lit::pos(v2)]);
        e.add_clause([Lit::pos(v2)]);
        let ext = e.build();

        assert_eq!(ext.num_layers(), 2);
        assert_eq!(ext.num_vars(), 3);
        assert_eq!(ext.num_clauses(), 2);
        // Clause indexing is flat across layers, base first.
        assert_eq!(ext.clause(0), &[Lit::pos(v0), Lit::pos(v1)]);
        assert_eq!(ext.clause(1), &[Lit::neg(v1), Lit::pos(v2)]);
        assert!(ext.clause_is_skeleton(0));
        assert!(!ext.clause_is_skeleton(1));
        // Units concatenate in layer order with provenance.
        assert_eq!(ext.units(), &[Lit::neg(v0), Lit::pos(v2)]);
        assert!(ext.unit_is_skeleton(0));
        assert!(!ext.unit_is_skeleton(1));
        // The base layer is literally shared, not copied.
        assert!(Arc::ptr_eq(&base.layers()[0], &ext.layers()[0]));
        // The base view is untouched.
        assert_eq!(base.num_vars(), 2);
        assert_eq!(base.num_clauses(), 1);
    }

    #[test]
    fn fingerprints_identify_identical_prefixes() {
        let build_base = || {
            let mut b = CnfBuilder::new();
            let v0 = b.new_var();
            let v1 = b.new_var();
            b.add_clause([Lit::pos(v0), Lit::pos(v1)]);
            b.build_tagged(true)
        };
        let base1 = build_base();
        let base2 = build_base();
        assert_eq!(base1.fingerprint(), base2.fingerprint());

        let mut e1 = CnfBuilder::extending(&base1);
        let v2 = e1.new_var();
        e1.add_clause([Lit::pos(v2)]);
        let ext1 = e1.build();
        // The extension changes the chain fingerprint but keeps the
        // skeleton prefix fingerprint visible.
        assert_ne!(ext1.fingerprint(), base1.fingerprint());
        assert_eq!(ext1.skeleton_fingerprints(), vec![base1.fingerprint()]);
        // A full-skeleton chain exposes every prefix fingerprint.
        let mut e2 = CnfBuilder::extending(&base1);
        let v2 = e2.new_var();
        e2.add_clause([Lit::pos(v2)]);
        let ext2 = e2.build_tagged(true);
        assert_eq!(
            ext2.skeleton_fingerprints(),
            vec![base1.fingerprint(), ext2.fingerprint()]
        );
        // Different content ⇒ different fingerprint.
        let mut d = CnfBuilder::new();
        let v0 = d.new_var();
        let v1 = d.new_var();
        d.add_clause([Lit::pos(v0), Lit::neg(v1)]);
        assert_ne!(d.build_tagged(true).fingerprint(), base1.fingerprint());
    }

    #[test]
    fn layer_metadata_exposes_cone_ranges_and_tags() {
        let mut b = CnfBuilder::new();
        let v0 = b.new_var();
        let v1 = b.new_var();
        b.add_clause([Lit::pos(v0), Lit::pos(v1)]);
        let base = b.build_tagged(true);
        let extend = |definitional: bool| {
            let mut e = CnfBuilder::extending(&base);
            let v2 = e.new_var();
            let v3 = e.new_var();
            e.add_clause([Lit::neg(v2), Lit::pos(v0)]);
            e.add_clause([Lit::neg(v3), Lit::pos(v2)]);
            e.add_clause([Lit::pos(v3)]);
            e.build_layer(true, definitional)
        };
        let ext = extend(true);
        assert!(!ext.layers()[0].is_definitional());
        assert!(ext.layers()[1].is_definitional());
        assert!(ext.layers()[1].is_skeleton());
        // Contiguous per-layer variable and clause ownership.
        assert_eq!(ext.layer_var_range(0), 0..2);
        assert_eq!(ext.layer_var_range(1), 2..4);
        assert_eq!(ext.layer_clause_range(0), 0..1);
        assert_eq!(ext.layer_clause_range(1), 1..3);
        assert_eq!(ext.layer_of_var(v0), 0);
        assert_eq!(ext.layer_of_var(v1), 0);
        let v2 = Var::from_index(2);
        assert_eq!(ext.layer_of_var(v2), 1);
        assert_eq!(ext.layer_of_clause(0), 0);
        assert_eq!(ext.layer_of_clause(2), 1);
        assert_eq!(ext.layers()[1].units().len(), 1);
        assert_eq!(ext.layers()[1].num_vars(), 4, "cumulative, not own");
        // The definitional tag is part of the chain fingerprint: two
        // chains that differ only in lazy eligibility must not share
        // vault shelves.
        assert_ne!(ext.fingerprint(), extend(false).fingerprint());
    }

    #[test]
    fn cone_vars_walks_definitional_defs_only() {
        // Skeleton over v0, v1; then two stacked definitional cones
        // g0 := v0 ∨ v1 and g1 := g0 ∨ v1.
        let mut b = CnfBuilder::new();
        let v0 = b.new_var();
        let v1 = b.new_var();
        b.add_clause([Lit::pos(v0), Lit::pos(v1)]);
        let base = b.build_tagged(true);
        let mut e1 = CnfBuilder::extending(&base);
        let g0 = e1.new_var();
        e1.add_clause([Lit::neg(g0), Lit::pos(v0), Lit::pos(v1)]);
        e1.add_clause([Lit::pos(g0), Lit::neg(v0)]);
        e1.add_clause([Lit::pos(g0), Lit::neg(v1)]);
        let l1 = e1.build_layer(true, true);
        let mut e2 = CnfBuilder::extending(&l1);
        let g1 = e2.new_var();
        e2.add_clause([Lit::neg(g1), Lit::pos(g0), Lit::pos(v1)]);
        e2.add_clause([Lit::pos(g1), Lit::neg(g0)]);
        e2.add_clause([Lit::pos(g1), Lit::neg(v1)]);
        let chain = e2.build_layer(true, true);
        let sorted = |mut v: Vec<Var>| {
            v.sort();
            v
        };
        // A skeleton root does not expand (its layer has no gate defs).
        assert_eq!(sorted(chain.cone_vars([v0])), vec![v0]);
        // g0's cone pulls in its skeleton inputs.
        assert_eq!(sorted(chain.cone_vars([g0])), vec![v0, v1, g0]);
        // g1 chains through g0 transitively.
        assert_eq!(sorted(chain.cone_vars([g1])), vec![v0, v1, g0, g1]);
        // Duplicated and out-of-range roots are tolerated and deduped.
        assert_eq!(
            sorted(chain.cone_vars([g0, g0, Var::from_index(99)])),
            vec![v0, v1, g0]
        );
    }

    #[test]
    fn extending_an_unsat_base_stays_unsat() {
        let mut b = CnfBuilder::new();
        let _ = b.new_var();
        b.add_clause([]);
        let base = b.build();
        let mut e = CnfBuilder::extending(&base);
        let v = e.new_var();
        e.add_clause([Lit::pos(v)]);
        assert!(!e.build().is_ok());
    }
}
