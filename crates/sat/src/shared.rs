//! Compile-once CNF sharing.
//!
//! A [`SharedCnf`] is an immutable CNF formula stored as a flat literal
//! arena. It is built once with a [`CnfBuilder`] and then attached to any
//! number of solvers via [`crate::Solver::attach_shared`]; the attached
//! solvers read clause literals straight out of the (`Arc`'d) arena and
//! keep only their tiny per-clause watch metadata private. This is what
//! lets a portfolio of cube workers solve the same compiled query without
//! each re-translating — or even copying — the clause database.

use crate::types::{Lit, Var};

/// An immutable CNF formula: a flat literal arena plus clause ranges.
///
/// Unit clauses are kept separately (they are enqueued, not watched), and
/// every stored clause has at least two distinct, non-complementary
/// literals — [`CnfBuilder`] establishes these invariants.
#[derive(Debug)]
pub struct SharedCnf {
    num_vars: usize,
    lits: Vec<Lit>,
    ranges: Vec<(u32, u32)>,
    units: Vec<Lit>,
    ok: bool,
}

impl SharedCnf {
    /// Number of variables the formula was built over.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of non-unit clauses in the arena.
    pub fn num_clauses(&self) -> usize {
        self.ranges.len()
    }

    /// The unit clauses, as literals.
    pub fn units(&self) -> &[Lit] {
        &self.units
    }

    /// `false` if an empty clause was added: the formula is trivially
    /// unsatisfiable.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// The literals of clause `i`.
    #[inline]
    pub fn clause(&self, i: usize) -> &[Lit] {
        let (start, len) = self.ranges[i];
        &self.lits[start as usize..(start + len) as usize]
    }

    /// Total literal count across all arena clauses.
    pub fn num_lits(&self) -> usize {
        self.lits.len()
    }
}

/// Builds a [`SharedCnf`], mirroring the clause normalization that
/// [`crate::Solver::add_clause`] performs (sorting, duplicate removal,
/// tautology elimination) minus the assignment-dependent simplification a
/// live solver would also apply.
#[derive(Debug, Default)]
pub struct CnfBuilder {
    num_vars: usize,
    lits: Vec<Lit>,
    ranges: Vec<(u32, u32)>,
    units: Vec<Lit>,
    ok: bool,
}

impl CnfBuilder {
    /// Creates an empty builder.
    pub fn new() -> CnfBuilder {
        CnfBuilder {
            ok: true,
            ..CnfBuilder::default()
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of non-unit clauses added so far.
    pub fn num_clauses(&self) -> usize {
        self.ranges.len()
    }

    /// Adds a clause. Returns `false` if the clause was empty (the formula
    /// is now trivially unsatisfiable).
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        let mut ls: Vec<Lit> = lits.into_iter().collect();
        ls.sort();
        ls.dedup();
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return true; // tautology: l and ¬l both present
            }
        }
        match ls.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.units.push(ls[0]);
                true
            }
            _ => {
                self.ranges.push((self.lits.len() as u32, ls.len() as u32));
                self.lits.extend(ls);
                true
            }
        }
    }

    /// Finalizes the formula.
    pub fn build(self) -> SharedCnf {
        SharedCnf {
            num_vars: self.num_vars,
            lits: self.lits,
            ranges: self.ranges,
            units: self.units,
            ok: self.ok,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_normalizes_clauses() {
        let mut b = CnfBuilder::new();
        let x = b.new_var();
        let y = b.new_var();
        assert!(b.add_clause([Lit::pos(x), Lit::neg(x)])); // tautology dropped
        assert!(b.add_clause([Lit::pos(y), Lit::pos(y)])); // dedups to a unit
        assert!(b.add_clause([Lit::pos(x), Lit::pos(y)]));
        let cnf = b.build();
        assert!(cnf.is_ok());
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(cnf.units(), &[Lit::pos(y)]);
        assert_eq!(cnf.clause(0), &[Lit::pos(x), Lit::pos(y)]);
    }

    #[test]
    fn empty_clause_marks_unsat() {
        let mut b = CnfBuilder::new();
        let _ = b.new_var();
        assert!(!b.add_clause([]));
        assert!(!b.build().is_ok());
    }
}
