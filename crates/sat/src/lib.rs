//! # litsynth-sat
//!
//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! This crate is the bottom layer of the `litsynth` stack: the bounded
//! relational model finder in `litsynth-relalg` compiles relational logic to
//! CNF and uses this solver to enumerate model instances, exactly as the
//! paper's Alloy → Kodkod → MiniSAT pipeline does.
//!
//! The solver implements the standard modern architecture:
//!
//! * two-watched-literal unit propagation,
//! * first-UIP conflict analysis with clause minimization,
//! * VSIDS variable activity with an indexed max-heap,
//! * phase saving,
//! * Luby-sequence restarts,
//! * a flat `u32` clause arena with free-list reuse and relocation GC,
//! * tiered learnt-clause retention (core/mid/local by LBD) with
//!   size-triggered database reduction,
//! * level-0 inprocessing: satisfied-clause purging, false-literal
//!   stripping, and on-the-fly subsumption / self-subsuming resolution,
//! * incremental solving under assumptions, and
//! * incremental clause addition between `solve` calls (used for
//!   blocking-clause model enumeration).
//!
//! For portfolio solving, a formula can be compiled once into an immutable
//! [`SharedCnf`] arena (via [`CnfBuilder`]) and attached to any number of
//! solvers with [`Solver::attach_shared`]; cooperating solvers can trade
//! learnt clauses through a [`ClauseExchange`] endpoint via
//! [`Solver::solve_exchanging`], and [`Solver::solve_limited`] supports
//! short probing runs whose VSIDS activities ([`Solver::activity`]) drive
//! adaptive cube selection in `litsynth-portfolio`.
//!
//! For resilience, [`Solver::solve_budgeted`] bounds a solve by conflicts,
//! propagations, and wall clock under a [`SolveBudget`], honors a shared
//! [`CancelToken`], and returns [`BudgetedResult::Interrupted`] instead of
//! looping forever; a [`FaultPlan`] (normally armed via the
//! `LITSYNTH_FAULT_PLAN` environment variable) injects panics, interrupts,
//! and stalls at deterministic (query, cube, attempt, restart) coordinates
//! so every recovery path can be exercised in tests.
//!
//! # Example
//!
//! ```
//! use litsynth_sat::{Solver, Lit};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! // (a ∨ b) ∧ (¬a ∨ b) — forces b.
//! s.add_clause([Lit::pos(a), Lit::pos(b)]);
//! s.add_clause([Lit::neg(a), Lit::pos(b)]);
//! assert!(s.solve().is_sat());
//! assert_eq!(s.value(b), Some(true));
//! ```

mod arena;
mod budget;
mod exchange;
mod fault;
mod heap;
mod shared;
mod solver;
mod types;

pub mod dimacs;

pub use budget::{BudgetedResult, CancelToken, Interrupt, SolveBudget};
pub use exchange::{ClauseExchange, NoExchange};
pub use fault::{FaultAction, FaultCtx, FaultPlan, FaultPlanError, FaultSite};
pub use shared::{CnfBuilder, CnfLayer, GateDef, SharedCnf};
pub use solver::{SolveResult, Solver, SolverStats};
pub use types::{Lit, Var};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn single_unit() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::pos(a)]);
        assert!(s.solve().is_sat());
        assert_eq!(s.value(a), Some(true));
    }

    #[test]
    fn contradiction_is_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::pos(a)]);
        s.add_clause([Lit::neg(a)]);
        assert!(!s.solve().is_sat());
    }
}
