//! Cooperative budgets and cancellation for long-running solves.
//!
//! A production synthesis run fans thousands of SAT queries over many
//! workers for hours; a single pathological query must never pin a worker
//! forever. [`SolveBudget`] bounds one [`Solver::solve_budgeted`] call by
//! conflicts, propagations, and wall clock, and carries an optional
//! [`CancelToken`] so an external supervisor can stop the search. All
//! limits are checked **at restart boundaries** — the solver never pays a
//! per-propagation check, so a budgeted solve costs the same as an
//! unbudgeted one, and a solve stops within one restart of its deadline.
//!
//! [`Solver::solve_budgeted`]: crate::Solver::solve_budgeted

use crate::fault::FaultCtx;
use crate::solver::SolveResult;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shared cancellation flag, checked by the solver at restart boundaries.
///
/// Cloning is cheap (an `Arc` bump); every clone observes the same flag.
/// Cancellation is sticky — there is deliberately no `reset`, a cancelled
/// token stays cancelled so late-starting workers bail immediately.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Solves holding a clone of this token return
    /// [`Interrupt::Cancelled`] at their next restart boundary.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// `true` once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Why a budgeted solve stopped without a definitive answer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Interrupt {
    /// The conflict budget ran out.
    Conflicts,
    /// The propagation budget ran out.
    Propagations,
    /// The wall-clock deadline passed.
    Deadline,
    /// The [`CancelToken`] was cancelled.
    Cancelled,
    /// A [`FaultPlan`](crate::FaultPlan) site forced an interrupt (testing
    /// only).
    Injected,
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Interrupt::Conflicts => "conflict budget exhausted",
            Interrupt::Propagations => "propagation budget exhausted",
            Interrupt::Deadline => "wall-clock deadline passed",
            Interrupt::Cancelled => "cancelled",
            Interrupt::Injected => "injected interrupt",
        };
        f.write_str(s)
    }
}

/// Result of a budgeted solve: a definitive answer, or the reason the
/// search was stopped early. The solver state stays warm either way, so an
/// interrupted solve can be resumed by calling again with a larger budget.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BudgetedResult {
    /// The search finished with a definitive answer.
    Done(SolveResult),
    /// A budget, deadline, cancellation, or injected fault stopped the
    /// search first.
    Interrupted(Interrupt),
}

impl BudgetedResult {
    /// `true` if the result is `Done(Sat)`.
    pub fn is_sat(self) -> bool {
        matches!(self, BudgetedResult::Done(SolveResult::Sat))
    }

    /// The definitive answer, or `None` when interrupted.
    pub fn done(self) -> Option<SolveResult> {
        match self {
            BudgetedResult::Done(r) => Some(r),
            BudgetedResult::Interrupted(_) => None,
        }
    }
}

/// Limits for one `solve_budgeted` call. The default is unlimited: zero
/// budgets mean "no limit", absent deadline/token mean "never".
#[derive(Clone, Debug, Default)]
pub struct SolveBudget {
    /// Maximum conflicts for this call (`0` = unlimited). Honored exactly:
    /// restart budgets are clamped to the remainder.
    pub max_conflicts: u64,
    /// Maximum propagations for this call (`0` = unlimited). Checked at
    /// restart boundaries, so a solve may overshoot by one restart's worth.
    pub max_propagations: u64,
    /// Wall-clock deadline; checked at restart boundaries.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation; checked at restart boundaries.
    pub cancel: Option<CancelToken>,
    /// Deterministic fault-injection coordinates (testing only).
    pub fault: Option<FaultCtx>,
}

impl SolveBudget {
    /// An unlimited budget — `solve_budgeted` with this never interrupts.
    pub fn unlimited() -> SolveBudget {
        SolveBudget::default()
    }

    /// A conflict-only budget.
    pub fn conflicts(max_conflicts: u64) -> SolveBudget {
        SolveBudget {
            max_conflicts,
            ..SolveBudget::default()
        }
    }

    /// `true` if no limit, deadline, token, or fault plan is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_conflicts == 0
            && self.max_propagations == 0
            && self.deadline.is_none()
            && self.cancel.is_none()
            && self.fault.is_none()
    }

    /// The first exceeded limit, given the conflicts/propagations spent so
    /// far in this call. Called by the solver at restart boundaries.
    pub(crate) fn exceeded(
        &self,
        spent_conflicts: u64,
        spent_propagations: u64,
    ) -> Option<Interrupt> {
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return Some(Interrupt::Cancelled);
            }
        }
        if self.max_conflicts > 0 && spent_conflicts >= self.max_conflicts {
            return Some(Interrupt::Conflicts);
        }
        if self.max_propagations > 0 && spent_propagations >= self.max_propagations {
            return Some(Interrupt::Propagations);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(Interrupt::Deadline);
            }
        }
        None
    }

    /// Conflicts left before [`SolveBudget::max_conflicts`] trips
    /// (`u64::MAX` when unlimited).
    pub(crate) fn conflicts_left(&self, spent_conflicts: u64) -> u64 {
        if self.max_conflicts == 0 {
            u64::MAX
        } else {
            self.max_conflicts.saturating_sub(spent_conflicts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn default_budget_is_unlimited() {
        let b = SolveBudget::unlimited();
        assert!(b.is_unlimited());
        assert_eq!(b.exceeded(u64::MAX - 1, u64::MAX - 1), None);
        assert_eq!(b.conflicts_left(12345), u64::MAX);
    }

    #[test]
    fn conflict_budget_trips_and_reports_remaining() {
        let b = SolveBudget::conflicts(100);
        assert!(!b.is_unlimited());
        assert_eq!(b.exceeded(99, 0), None);
        assert_eq!(b.exceeded(100, 0), Some(Interrupt::Conflicts));
        assert_eq!(b.conflicts_left(40), 60);
        assert_eq!(b.conflicts_left(200), 0);
    }

    #[test]
    fn propagation_budget_trips() {
        let b = SolveBudget {
            max_propagations: 10,
            ..SolveBudget::default()
        };
        assert_eq!(b.exceeded(0, 9), None);
        assert_eq!(b.exceeded(0, 10), Some(Interrupt::Propagations));
    }

    #[test]
    fn deadline_trips_once_passed() {
        let b = SolveBudget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..SolveBudget::default()
        };
        assert_eq!(b.exceeded(0, 0), Some(Interrupt::Deadline));
        let later = SolveBudget {
            deadline: Some(Instant::now() + Duration::from_secs(3600)),
            ..SolveBudget::default()
        };
        assert_eq!(later.exceeded(0, 0), None);
    }

    #[test]
    fn cancel_token_is_shared_and_sticky() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled());
        let b = SolveBudget {
            cancel: Some(clone),
            ..SolveBudget::default()
        };
        assert_eq!(b.exceeded(0, 0), Some(Interrupt::Cancelled));
    }

    #[test]
    fn cancellation_outranks_other_limits() {
        let t = CancelToken::new();
        t.cancel();
        let b = SolveBudget {
            max_conflicts: 1,
            cancel: Some(t),
            ..SolveBudget::default()
        };
        assert_eq!(b.exceeded(5, 0), Some(Interrupt::Cancelled));
    }
}
