//! The CDCL solver proper.

use crate::arena::{ClauseArena, TIER_CORE, TIER_LOCAL, TIER_MID};
use crate::budget::{BudgetedResult, Interrupt, SolveBudget};
use crate::exchange::{ClauseExchange, NoExchange};
use crate::fault::FaultAction;
use crate::heap::{ActivityHeap, DecisionDomain};
use crate::shared::SharedCnf;
use crate::types::{LBool, Lit, Var};
use std::sync::Arc;

/// Result of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::value`].
    Sat,
    /// The formula (under the given assumptions, if any) is unsatisfiable.
    Unsat,
}

impl SolveResult {
    /// `true` if the result is [`SolveResult::Sat`].
    pub fn is_sat(self) -> bool {
        matches!(self, SolveResult::Sat)
    }
}

/// Aggregate search statistics, useful for the benchmark harness.
#[derive(Clone, Copy, Default, Debug)]
pub struct SolverStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnts: u64,
    /// Decisions served from the local level of the two-level decision
    /// domain (always ≤ `decisions`; 0 unless the domain is enabled).
    pub domain_decisions: u64,
    /// Imported clauses that were shelved over a dormant cone and later
    /// replayed when the cone activated (lazy attach only).
    pub shelved_replayed: u64,
    /// Level-0 inprocessing: local clauses purged because they were
    /// satisfied at level 0 (plus shared clauses whose private watchers
    /// were dropped for the same reason).
    pub simplify_removed: u64,
    /// Learnt clauses deleted because another learnt clause subsumed them.
    pub subsumed: u64,
    /// Literals removed from learnt clauses by level-0 false-literal
    /// stripping and self-subsuming resolution.
    pub strengthened: u64,
    /// Relocation GC passes over the local clause arena.
    pub gc_runs: u64,
    /// Arena words reclaimed by those GC passes.
    pub gc_reclaimed_words: u64,
    /// Live learnt clauses in the CORE retention tier (LBD ≤ 2; immortal).
    pub learnts_core: u64,
    /// Live learnt clauses in the MID retention tier (LBD ≤ 6; demoted to
    /// LOCAL when unused between two reductions).
    pub learnts_mid: u64,
    /// Live learnt clauses in the LOCAL retention tier (the
    /// activity-sorted deletion pool).
    pub learnts_local: u64,
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: u32,
    blocker: Lit,
}

const VAR_DECAY: f64 = 0.95;
const CLA_DECAY: f64 = 0.999;
const RESCALE_LIMIT: f64 = 1e100;
/// Clause activities are stored as f32 bits in the arena header, so the
/// rescale threshold is far below the variable one.
const RESCALE_LIMIT_CLA: f64 = 1e20;
const RESTART_BASE: u64 = 100;
/// LBD boundaries of the learnt retention tiers.
const CORE_LBD: u32 = 2;
const MID_LBD: u32 = 6;
/// Initial live-learnt budget: `reduce_db` fires when the live learnt
/// count passes it (a function of database size, not conflict cadence),
/// and the budget grows geometrically afterwards.
const LEARNT_BUDGET_INIT: f64 = 1000.0;
const LEARNT_BUDGET_GROWTH: f64 = 1.3;
/// On-the-fly subsumption queue cap: learnts past it skip the queue (the
/// pass is opportunistic; missing one only costs pruning).
const SUBSUME_QUEUE_CAP: usize = 10_000;

fn tier_for_lbd(lbd: u32) -> u32 {
    if lbd <= CORE_LBD {
        TIER_CORE
    } else if lbd <= MID_LBD {
        TIER_MID
    } else {
        TIER_LOCAL
    }
}

/// High bit of a clause reference: set for clauses living in the shared
/// arena ([`SharedCnf`]), clear for clauses in this solver's local database.
const SHARED_BIT: u32 = 1 << 31;

/// A CDCL SAT solver. See the crate-level documentation for an overview and
/// example.
///
/// A solver owns its clause database — unless it was created with
/// [`Solver::attach_shared`], in which case the original clauses live in an
/// immutable, reference-counted [`SharedCnf`] arena that any number of
/// sibling solvers read concurrently. Only the per-clause watch positions
/// (two `u32`s each) are private to the attached solver; learnt clauses and
/// incrementally added clauses (e.g. enumeration blocking clauses) stay
/// local as usual.
#[derive(Debug, Default)]
pub struct Solver {
    /// The flat local clause database: originals and learnts live side by
    /// side in one `u32` slab, addressed by word-offset crefs (see
    /// [`ClauseArena`]). Local crefs stay below [`SHARED_BIT`].
    ca: ClauseArena,
    /// CRefs of the live original (non-learnt) local clauses.
    local_clauses: Vec<u32>,
    /// CRefs of the live learnt clauses.
    learnt_refs: Vec<u32>,
    /// Live learnt count per retention tier (indexed by `TIER_*`).
    n_tier: [usize; 3],
    /// Learnts (own and imported) queued for the next level-0 subsumption
    /// pass.
    subsume_queue: Vec<u32>,
    /// Trail length after the last `simplify`; skipping the pass while it
    /// is unchanged is what makes the cadence cheap.
    simp_db_assigns: usize,
    /// Propagation count below which the next `simplify` is deferred
    /// (classic minisat `simpDB_props` pacing).
    simp_db_props: u64,
    /// Level-0 inprocessing on/off (see [`Solver::set_inprocessing`]).
    inprocess: bool,
    /// Tiered learnt retention on/off (see
    /// [`Solver::set_tiered_retention`]).
    tiered: bool,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    polarity: Vec<bool>,
    activity: Vec<f64>,
    heap: ActivityHeap,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    reason: Vec<Option<u32>>,
    level: Vec<u32>,
    qhead: usize,
    ok: bool,
    var_inc: f64,
    cla_inc: f64,
    seen: Vec<bool>,
    model: Vec<LBool>,
    stats: SolverStats,
    max_learnts: f64,
    /// The shared clause arena, if attached.
    shared: Option<Arc<SharedCnf>>,
    /// Per-shared-clause watched positions (indices into the clause's
    /// literal slice). The arena is immutable, so the usual MiniSAT trick
    /// of swapping watched literals to the front is replaced by this tiny
    /// per-solver table.
    shared_watch: Vec<[u32; 2]>,
    /// Per-shared-clause skeleton flags, precomputed at attach so the hot
    /// purity lookups never walk the layer chain.
    shared_skel: Vec<bool>,
    /// Local crefs of clauses learnt since the last exchange point.
    fresh_learnts: Vec<u32>,
    /// Unit clauses learnt since the last exchange point (units never get
    /// a cref; they are enqueued directly), with their skeleton purity.
    fresh_units: Vec<(Lit, bool)>,
    /// Skeleton purity of each variable's level-0 assignment (meaningful
    /// only while the variable is assigned at level 0): `true` iff the
    /// assignment is derivable from skeleton clauses alone. Conflict
    /// analysis silently drops level-0 literals from learnt clauses, so
    /// their derivations must flow into learnt-clause purity here.
    zero_pure: Vec<bool>,
    /// Scratch for LBD computation (level → generation stamp).
    lbd_seen: Vec<u64>,
    lbd_gen: u64,
    /// `true` when created with [`Solver::attach_shared_lazy`]:
    /// definitional shared gates start dormant and activate on demand.
    lazy: bool,
    /// Per-variable activation state. Local variables and every variable
    /// of an eager attach are always active; gate variables of a
    /// definitional layer are inactive — their defining clauses unwatched,
    /// the variable never assigned or branched on — until the search first
    /// references them ([`Solver::activate_vars`]).
    var_active: Vec<bool>,
    /// `false` restores the pre-shelving behavior of dropping imports over
    /// dormant cones (ablation knob; see [`Solver::set_shelving`]).
    shelve: bool,
    /// Shelved imports: clauses received over an exchange while at least
    /// one of their variables was dormant, parked here (with their purity
    /// claim) until [`Solver::activate_vars`] wakes the last dormant
    /// variable and replays them. `None` once replayed.
    shelved: Vec<Option<(Vec<Lit>, u32, bool)>>,
    /// Per-variable shelf watch: `shelf_watch[v]` lists the `shelved` slots
    /// currently parked on dormant variable `v` (each shelved clause is
    /// registered under exactly one of its dormant variables; on that
    /// variable's activation the slot re-registers under another dormant
    /// variable or, when none is left, replays).
    shelf_watch: Vec<Vec<u32>>,
    /// The local level of the two-level decision domain: the declared
    /// cone's variables, rebuilt by [`Solver::declare_roots`] when
    /// `use_domain` is set.
    domain: DecisionDomain,
    /// Whether [`Solver::declare_roots`] builds a decision domain and
    /// solves branch on it first (see [`Solver::set_domain_enabled`]).
    use_domain: bool,
    /// Whether the *current* solve consults the local domain — set on
    /// entry to `solve_budgeted`/`solve_limited`, cleared on exit, so the
    /// restriction is per-query and costs one flag check per decision.
    domain_active: bool,
}

impl Solver {
    /// Creates an empty solver with no variables or clauses.
    pub fn new() -> Solver {
        Solver {
            ok: true,
            var_inc: 1.0,
            cla_inc: 1.0,
            max_learnts: LEARNT_BUDGET_INIT,
            // usize::MAX ≠ any trail length, so the first simplify runs.
            simp_db_assigns: usize::MAX,
            inprocess: true,
            tiered: true,
            shelve: true,
            ..Solver::default()
        }
    }

    /// Creates a solver attached to a pre-compiled shared formula.
    ///
    /// The arena's variables are allocated, its clauses are watched in
    /// place (no literals are copied), and its unit clauses are enqueued
    /// and propagated. The attach cost is O(vars + clauses), independent of
    /// the total literal count — cheap enough to hand every portfolio
    /// worker its own solver over one compilation.
    pub fn attach_shared(shared: Arc<SharedCnf>) -> Solver {
        let mut s = Solver::new();
        for _ in 0..shared.num_vars() {
            s.new_var();
        }
        s.shared_watch = vec![[0, 1]; shared.num_clauses()];
        s.shared_skel = Vec::with_capacity(shared.num_clauses());
        for i in 0..shared.num_clauses() {
            let cl = shared.clause(i);
            debug_assert!(cl.len() >= 2, "arena clauses are never unit");
            let cref = SHARED_BIT | i as u32;
            s.watches[cl[0].code()].push(Watcher {
                cref,
                blocker: cl[1],
            });
            s.watches[cl[1].code()].push(Watcher {
                cref,
                blocker: cl[0],
            });
            s.shared_skel.push(shared.clause_is_skeleton(i));
        }
        s.ok = shared.is_ok();
        let units: Vec<(Lit, bool)> = shared
            .units()
            .iter()
            .enumerate()
            .map(|(i, &u)| (u, shared.unit_is_skeleton(i)))
            .collect();
        s.shared = Some(shared);
        if s.ok {
            for (u, pure) in units {
                match s.lit_value(u) {
                    LBool::True => {
                        // Already true: keep the stronger (pure) provenance
                        // if this unit provides it.
                        if pure {
                            let v = u.var().index();
                            s.zero_pure[v] = true;
                        }
                    }
                    LBool::False => {
                        s.ok = false;
                        break;
                    }
                    LBool::Undef => {
                        s.zero_pure[u.var().index()] = pure;
                        s.unchecked_enqueue(u, None);
                    }
                }
            }
            if s.ok && s.propagate().is_some() {
                s.ok = false;
            }
        }
        s
    }

    /// [`Solver::attach_shared`], but the gates of *definitional* layers
    /// ([`crate::CnfLayer::is_definitional`]) start dormant: no watchers
    /// are installed for their defining clauses, the gate variables are
    /// never branched on or assigned, and propagation never walks their
    /// clauses. A dormant gate activates the moment the search references
    /// it — through an assumption, an added (non-imported) clause, or
    /// transitively as an input of another activating gate — at which
    /// point its defining clauses are installed and their consequences
    /// replayed at level 0 (see [`Solver::activate_vars`] for why that is
    /// sound). Imported clauses over a dormant gate are *shelved* instead
    /// of activating it: imports are redundant (they only prune), so
    /// deferring one is always sound, and activation replays the shelf the
    /// moment the cone wakes so no sound pruning is ever discarded (see
    /// [`Solver::set_shelving`]).
    ///
    /// Activation is per *gate*, not per layer: on a hash-consed
    /// sweep-shared chain most of a sibling query's cone lives in layers
    /// this query also draws shared sub-gates from, so waking whole layers
    /// would wake nearly everything. Walking the definitional sub-DAG var
    /// by var installs exactly the cone the query reaches and nothing
    /// else, while solving the *same formula* as far as the query can
    /// observe: a dormant gate only names a function nothing active
    /// constrains.
    pub fn attach_shared_lazy(shared: Arc<SharedCnf>) -> Solver {
        let mut s = Solver::new();
        for _ in 0..shared.num_vars() {
            s.new_var();
        }
        s.shared_watch = vec![[0, 1]; shared.num_clauses()];
        s.shared_skel = (0..shared.num_clauses())
            .map(|i| shared.clause_is_skeleton(i))
            .collect();
        s.lazy = true;
        for (li, layer) in shared.layers().iter().enumerate() {
            if layer.is_definitional() {
                for v in shared.layer_var_range(li) {
                    s.var_active[v] = false;
                }
            }
        }
        s.ok = shared.is_ok();
        // Non-definitional layers (the skeleton, monolithic layers) assert
        // things; they are installed up front exactly as an eager attach
        // would watch them. Any definitional gate their clauses or units
        // reference as input is seeded active — the closure invariant is
        // that an installed clause only mentions active variables.
        let mut seed = Vec::new();
        let mut units = Vec::new();
        for (li, layer) in shared.layers().iter().enumerate() {
            if layer.is_definitional() {
                continue;
            }
            for ci in shared.layer_clause_range(li) {
                let cl = shared.clause(ci);
                debug_assert!(cl.len() >= 2, "arena clauses are never unit");
                let cref = SHARED_BIT | ci as u32;
                s.watches[cl[0].code()].push(Watcher {
                    cref,
                    blocker: cl[1],
                });
                s.watches[cl[1].code()].push(Watcher {
                    cref,
                    blocker: cl[0],
                });
                seed.extend(cl.iter().map(|l| l.var()));
            }
            for &u in layer.units() {
                units.push((u, layer.is_skeleton()));
                seed.push(u.var());
            }
        }
        seed.retain(|v| !s.var_active[v.index()]);
        s.shared = Some(shared);
        if s.ok {
            for (u, pure) in units {
                match s.lit_value(u) {
                    LBool::True => {
                        if pure {
                            s.zero_pure[u.var().index()] = true;
                        }
                    }
                    LBool::False => {
                        s.ok = false;
                        break;
                    }
                    LBool::Undef => {
                        s.zero_pure[u.var().index()] = pure;
                        s.unchecked_enqueue(u, None);
                    }
                }
            }
        }
        if s.ok {
            s.activate_vars(seed);
        }
        if s.ok && s.propagate().is_some() {
            s.ok = false;
        }
        s
    }

    /// Number of shared layers with watchers installed: all of them after
    /// an eager [`Solver::attach_shared`], 0 with no arena. After
    /// [`Solver::attach_shared_lazy`], counts the layers at least one of
    /// whose own gates has activated (a layer owning no variables counts
    /// as active — it has nothing to defer).
    pub fn active_layer_count(&self) -> usize {
        let Some(sh) = &self.shared else { return 0 };
        if !self.lazy {
            return sh.num_layers();
        }
        (0..sh.num_layers())
            .filter(|&li| {
                let r = sh.layer_var_range(li);
                !sh.layers()[li].is_definitional()
                    || r.is_empty()
                    || r.clone().any(|v| self.var_active[v])
            })
            .count()
    }

    /// Number of variables with watchers live: every variable after an
    /// eager [`Solver::attach_shared`] (or on a solver with no arena),
    /// only the activated ones after [`Solver::attach_shared_lazy`].
    /// Diagnostic companion to [`Solver::active_layer_count`] at gate
    /// granularity.
    pub fn active_var_count(&self) -> usize {
        if !self.lazy {
            return self.assigns.len();
        }
        self.var_active.iter().filter(|&&a| a).count()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.polarity.push(false);
        self.activity.push(0.0);
        self.reason.push(None);
        self.level.push(0);
        self.seen.push(false);
        self.zero_pure.push(false);
        self.var_active.push(true);
        self.shelf_watch.push(Vec::new());
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.insert(v.index(), &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of original (non-learnt, non-deleted) clauses, including the
    /// shared arena's clauses and units when attached.
    pub fn num_clauses(&self) -> usize {
        let shared = self
            .shared
            .as_ref()
            .map_or(0, |s| s.num_clauses() + s.units().len());
        self.local_clauses.len() + shared
    }

    /// Search statistics accumulated so far.
    pub fn stats(&self) -> SolverStats {
        let mut s = self.stats;
        s.learnts = self.learnt_refs.len() as u64;
        s.learnts_core = self.n_tier[TIER_CORE as usize] as u64;
        s.learnts_mid = self.n_tier[TIER_MID as usize] as u64;
        s.learnts_local = self.n_tier[TIER_LOCAL as usize] as u64;
        s
    }

    /// The VSIDS activity of `v` (0.0 for unknown variables). Activities
    /// are what the portfolio's adaptive cube selection samples from a
    /// probing run.
    pub fn activity(&self, v: Var) -> f64 {
        self.activity.get(v.index()).copied().unwrap_or(0.0)
    }

    /// Gives `v` one initial VSIDS activity bump, so the first decisions
    /// favor it over never-bumped variables. Callers attached to a large
    /// shared formula use this to steer branching into the cone their query
    /// actually constrains — on a formula compiled in shared layers, plain
    /// variable-index order would branch into the (unconstrained) layers of
    /// other queries first. A no-op once real conflict bumps have pushed
    /// `v` past the seed value; idempotent before that.
    pub fn warm_var(&mut self, v: Var) {
        let i = v.index();
        if i < self.activity.len() && self.activity[i] < self.var_inc {
            self.activity[i] = self.var_inc;
            self.heap.increased(i, &self.activity);
        }
    }

    /// Controls shelve-and-replay of imports over dormant cones (lazy
    /// attach only; default on). With shelving off, such imports are
    /// dropped outright — the PR 5 behavior, kept as an ablation knob.
    /// Sound either way: imports only prune.
    pub fn set_shelving(&mut self, on: bool) {
        self.shelve = on;
    }

    /// Enables the two-level decision domain (default off). When on, each
    /// [`Solver::declare_roots`] call rebuilds the local domain as the
    /// declared cone, and every subsequent `solve_budgeted`/`solve_limited`
    /// branches on the cone's variables first, falling back to the global
    /// VSIDS heap only once no cone variable is left unassigned. The
    /// restriction only reorders decisions, so results (and, downstream,
    /// enumerated suites) are unchanged — it exists to keep a pooled
    /// solver's search inside the current query's cone even after earlier
    /// tasks activated unrelated cones.
    pub fn set_domain_enabled(&mut self, on: bool) {
        self.use_domain = on;
        if !on {
            self.domain.reset();
        }
    }

    /// Controls level-0 inprocessing (default on): between solves — at the
    /// classic `simpDB` cadence — the solver purges local clauses satisfied
    /// at level 0, strips false literals, and runs on-the-fly subsumption +
    /// self-subsuming resolution over recently landed learnts. Every step
    /// only deletes satisfied clauses or strengthens existing ones, so the
    /// model set (and downstream, enumerated suite bytes) is unchanged.
    pub fn set_inprocessing(&mut self, on: bool) {
        self.inprocess = on;
    }

    /// Controls tiered learnt retention (default on): learnts are filed
    /// CORE/MID/LOCAL by LBD; a reduction keeps CORE clauses, demotes
    /// unused MID clauses, and deletes the lowest-activity half of the
    /// LOCAL tier. Off restores the legacy single-activity halving. Both
    /// modes trigger when the live learnt count outgrows its budget — a
    /// function of database size, not conflict cadence. Retention only
    /// decides which *redundant* clauses to keep, so either policy yields
    /// the same models.
    pub fn set_tiered_retention(&mut self, on: bool) {
        self.tiered = on;
    }

    /// Overrides the live-learnt budget that triggers `reduce_db` (tests
    /// and tuning).
    pub fn set_learnt_budget(&mut self, budget: usize) {
        self.max_learnts = budget as f64;
    }

    /// Number of imports currently shelved awaiting cone activation.
    pub fn shelved_count(&self) -> usize {
        self.shelved.iter().filter(|s| s.is_some()).count()
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// May be called at any time, including between `solve` calls; this is how
    /// blocking clauses are added during model enumeration. Returns `false` if
    /// the formula has become trivially unsatisfiable.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        self.add_clause_inner(lits.into_iter().collect(), false, 0, false)
    }

    /// [`Solver::add_clause`], but the clause enters the database as a
    /// learnt import: eligible for database reduction and never re-exported
    /// over an exchange. `lbd` is the sender's reported LBD (an upper
    /// bound; conflict analysis tightens it on use) and `pure` the sender's
    /// skeleton-purity claim.
    fn import_clause(&mut self, lits: Vec<Lit>, lbd: u32, pure: bool) -> bool {
        self.add_clause_inner(lits, true, lbd, pure)
    }

    fn add_clause_inner(&mut self, mut ls: Vec<Lit>, import: bool, lbd: u32, pure: bool) -> bool {
        if !self.ok {
            return false;
        }
        self.cancel_until(0);
        if self.lazy {
            if import {
                // An imported clause over a dormant cone must not activate
                // the cone — that would pay exactly the propagation tax
                // laziness avoids (measured: activate-on-import loses on
                // every swept bound). But dropping it outright forgoes
                // sound pruning forever (measured: the bound-5 inversion),
                // so instead the clause is *shelved*, watched on one of
                // its dormant variables, and replayed by
                // [`Solver::activate_vars`] the moment its whole cone is
                // awake. Sound in both directions: an import is redundant,
                // so deferring it loses no models, and replaying it only
                // prunes.
                if let Some(l) = ls.iter().find(|l| !self.var_active[l.var().index()]) {
                    if self.shelve {
                        let slot = self.shelved.len() as u32;
                        self.shelf_watch[l.var().index()].push(slot);
                        self.shelved.push(Some((ls, lbd, pure)));
                    }
                    return true;
                }
            } else {
                // An asserted clause references the cone for real: wake it
                // so the new clause's literals land on live watchers.
                self.activate_for_lits(ls.iter().copied());
                if !self.ok {
                    return false;
                }
            }
        }
        ls.sort();
        ls.dedup();
        // Detect tautologies and drop literals already false at level 0.
        // Each dropped literal strengthens the clause using that literal's
        // level-0 derivation, so purity is demoted unless the derivation
        // itself was skeleton-pure.
        let mut pure = pure;
        let mut filtered = Vec::with_capacity(ls.len());
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return true; // tautology: l and ¬l both present
            }
            match self.lit_value(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => pure &= self.zero_pure[l.var().index()],
                LBool::Undef => filtered.push(l),
            }
        }
        match filtered.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.zero_pure[filtered[0].var().index()] = pure;
                self.unchecked_enqueue(filtered[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                let len = filtered.len() as u32;
                let cref = self.attach_new_clause(filtered, import);
                self.ca.set_skeleton(cref, pure);
                if import {
                    self.ca.set_imported(cref);
                    // The sender's LBD is an upper bound; level-0 stripping
                    // above can only have tightened the clause, and no
                    // clause is worse than its length.
                    self.set_learnt_lbd(cref, lbd.clamp(1, len));
                    if self.subsume_queue.len() < SUBSUME_QUEUE_CAP {
                        self.subsume_queue.push(cref);
                    }
                }
                true
            }
        }
    }

    /// Solves the formula with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals. The assumptions hold only
    /// for this call; subsequent calls start fresh.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_exchanging(assumptions, &mut NoExchange)
    }

    /// [`Solver::solve_with_assumptions`] with learnt-clause exchange: at
    /// every restart boundary (and on entry/exit) the solver exports the
    /// clauses learnt since the last exchange point and imports whatever
    /// peers published. See [`ClauseExchange`] for the soundness contract.
    pub fn solve_exchanging(
        &mut self,
        assumptions: &[Lit],
        exchange: &mut dyn ClauseExchange,
    ) -> SolveResult {
        match self.solve_budgeted(assumptions, exchange, &SolveBudget::unlimited()) {
            BudgetedResult::Done(r) => r,
            BudgetedResult::Interrupted(i) => {
                unreachable!("unlimited budget cannot interrupt, got {i:?}")
            }
        }
    }

    /// [`Solver::solve_exchanging`] under a [`SolveBudget`]: conflict and
    /// propagation limits, a wall-clock deadline, and a cooperative
    /// [`CancelToken`](crate::CancelToken) are all checked at restart
    /// boundaries, so a budgeted solve costs nothing extra per propagation
    /// and stops within one restart of its deadline. Returns
    /// [`BudgetedResult::Interrupted`] instead of looping forever.
    ///
    /// The conflict limit is honored exactly (restart budgets are clamped
    /// to the remainder); the other limits can overshoot by at most one
    /// restart's worth of work. On interrupt the solver state stays warm
    /// and clauses learnt so far are still exported, so the call can be
    /// repeated with a larger budget to resume the search.
    pub fn solve_budgeted(
        &mut self,
        assumptions: &[Lit],
        exchange: &mut dyn ClauseExchange,
        budget: &SolveBudget,
    ) -> BudgetedResult {
        // Arm the local decision domain for the duration of this solve:
        // O(1) on, O(1) off, and the domain itself (built at
        // `declare_roots`) survives for the next solve on this query.
        self.domain_active = self.use_domain && self.domain.len() > 0;
        let r = self.solve_budgeted_inner(assumptions, exchange, budget);
        self.domain_active = false;
        r
    }

    fn solve_budgeted_inner(
        &mut self,
        assumptions: &[Lit],
        exchange: &mut dyn ClauseExchange,
        budget: &SolveBudget,
    ) -> BudgetedResult {
        self.model.clear();
        if !self.ok {
            return BudgetedResult::Done(SolveResult::Unsat);
        }
        // Lazy arenas: the assumptions declare which cones this solve
        // touches; wake them before search (and before imports, so peer
        // clauses over the now-live cones are accepted).
        self.activate_for_lits(assumptions.iter().copied());
        if !self.ok {
            return BudgetedResult::Done(SolveResult::Unsat);
        }
        let start_conflicts = self.stats.conflicts;
        let start_propagations = self.stats.propagations;
        self.export_fresh(exchange);
        self.import_pending(exchange);
        if !self.ok {
            return BudgetedResult::Done(SolveResult::Unsat);
        }
        // Level-0 inprocessing between queries: by far the most valuable
        // moment on a pooled solver, right after the previous query's
        // blocking clauses became level-0-satisfiable dead weight.
        self.simplify();
        if !self.ok {
            return BudgetedResult::Done(SolveResult::Unsat);
        }
        let mut restart = 0u64;
        loop {
            let spent_conflicts = self.stats.conflicts - start_conflicts;
            let spent_propagations = self.stats.propagations - start_propagations;
            if let Some(i) = budget.exceeded(spent_conflicts, spent_propagations) {
                self.cancel_until(0);
                self.export_fresh(exchange);
                return BudgetedResult::Interrupted(i);
            }
            if let Some(fault) = &budget.fault {
                match fault.action_at(restart) {
                    Some(FaultAction::Panic) => {
                        panic!("injected fault: panic at restart {restart}")
                    }
                    Some(FaultAction::Interrupt) => {
                        self.cancel_until(0);
                        self.export_fresh(exchange);
                        return BudgetedResult::Interrupted(Interrupt::Injected);
                    }
                    Some(FaultAction::Slow(d)) => std::thread::sleep(d),
                    None => {}
                }
            }
            let search_budget =
                (RESTART_BASE * luby(restart)).min(budget.conflicts_left(spent_conflicts));
            match self.search(search_budget, assumptions) {
                Some(r) => {
                    self.cancel_until(0);
                    self.export_fresh(exchange);
                    return BudgetedResult::Done(r);
                }
                None => {
                    self.stats.restarts += 1;
                    restart += 1;
                    self.cancel_until(0);
                    self.export_fresh(exchange);
                    self.import_pending(exchange);
                    if !self.ok {
                        return BudgetedResult::Done(SolveResult::Unsat);
                    }
                    // Restart boundaries are level 0 with fresh imports in
                    // the subsumption queue; the cadence gate keeps this
                    // from firing every restart.
                    self.simplify();
                    if !self.ok {
                        return BudgetedResult::Done(SolveResult::Unsat);
                    }
                }
            }
        }
    }

    /// Runs CDCL search under a total conflict budget. Returns `None` when
    /// the budget ran out before a definitive answer.
    ///
    /// The solver state (learnt clauses, VSIDS activities, phases) is left
    /// warm, which is the point: the portfolio's adaptive cube selection
    /// probes a query with a small budget and reads the resulting
    /// activities via [`Solver::activity`].
    pub fn solve_limited(
        &mut self,
        assumptions: &[Lit],
        max_conflicts: u64,
    ) -> Option<SolveResult> {
        self.domain_active = self.use_domain && self.domain.len() > 0;
        let r = self.solve_limited_inner(assumptions, max_conflicts);
        self.domain_active = false;
        r
    }

    fn solve_limited_inner(
        &mut self,
        assumptions: &[Lit],
        max_conflicts: u64,
    ) -> Option<SolveResult> {
        self.model.clear();
        if !self.ok {
            return Some(SolveResult::Unsat);
        }
        self.activate_for_lits(assumptions.iter().copied());
        if !self.ok {
            return Some(SolveResult::Unsat);
        }
        let start_conflicts = self.stats.conflicts;
        let mut restart = 0u64;
        loop {
            let spent = self.stats.conflicts - start_conflicts;
            if spent >= max_conflicts {
                self.cancel_until(0);
                return None;
            }
            let budget = (RESTART_BASE * luby(restart)).min(max_conflicts - spent);
            match self.search(budget, assumptions) {
                Some(r) => {
                    self.cancel_until(0);
                    return Some(r);
                }
                None => {
                    self.stats.restarts += 1;
                    restart += 1;
                    self.cancel_until(0);
                }
            }
        }
    }

    /// The value of `v` in the most recent satisfying assignment, or `None`
    /// if the last solve was unsatisfiable (or never happened, or the variable
    /// was created afterwards).
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.model.get(v.index()) {
            Some(LBool::True) => Some(true),
            Some(LBool::False) => Some(false),
            _ => None,
        }
    }

    /// The value of a literal in the most recent satisfying assignment.
    pub fn lit_model_value(&self, l: Lit) -> Option<bool> {
        self.value(l.var()).map(|b| b == l.is_positive())
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    #[inline]
    fn lit_value(&self, l: Lit) -> LBool {
        self.assigns[l.var().index()].under_sign(l.is_positive())
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Number of literals in the clause behind `cref` (shared or local).
    #[inline]
    fn clause_len(&self, cref: u32) -> usize {
        if cref & SHARED_BIT != 0 {
            self.shared
                .as_ref()
                .expect("shared cref implies attached arena")
                .clause((cref & !SHARED_BIT) as usize)
                .len()
        } else {
            self.ca.len(cref)
        }
    }

    /// Literal `j` of the clause behind `cref` (shared or local).
    #[inline]
    fn clause_lit(&self, cref: u32, j: usize) -> Lit {
        if cref & SHARED_BIT != 0 {
            self.shared
                .as_ref()
                .expect("shared cref implies attached arena")
                .clause((cref & !SHARED_BIT) as usize)[j]
        } else {
            self.ca.lit(cref, j)
        }
    }

    fn attach_new_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        debug_assert!(lits.len() >= 2);
        let cref = self.ca.alloc(&lits, learnt);
        self.watches[lits[0].code()].push(Watcher {
            cref,
            blocker: lits[1],
        });
        self.watches[lits[1].code()].push(Watcher {
            cref,
            blocker: lits[0],
        });
        if learnt {
            self.learnt_refs.push(cref);
            // Filed LOCAL until the caller supplies a real LBD
            // (`set_learnt_lbd`), so the tier counters always balance.
            self.ca.set_tier(cref, TIER_LOCAL);
            self.n_tier[TIER_LOCAL as usize] += 1;
        } else {
            self.local_clauses.push(cref);
        }
        cref
    }

    /// Records a learnt clause's LBD and refiles it in the matching
    /// retention tier.
    fn set_learnt_lbd(&mut self, cref: u32, lbd: u32) {
        self.ca.set_lbd(cref, lbd);
        self.move_tier(cref, tier_for_lbd(lbd));
    }

    fn move_tier(&mut self, cref: u32, tier: u32) {
        let old = self.ca.tier(cref);
        if old != tier {
            self.n_tier[old as usize] -= 1;
            self.n_tier[tier as usize] += 1;
            self.ca.set_tier(cref, tier);
        }
    }

    /// Skeleton purity of the clause behind `cref` (shared or local).
    #[inline]
    fn clause_pure(&self, cref: u32) -> bool {
        if cref & SHARED_BIT != 0 {
            self.shared_skel[(cref & !SHARED_BIT) as usize]
        } else {
            self.ca.is_skeleton(cref)
        }
    }

    /// Declares the cone roots a query is about to solve under: activates
    /// the listed literals' defining cones immediately instead of at the
    /// first `solve` call, and — when the two-level decision domain is
    /// enabled ([`Solver::set_domain_enabled`]) — rebuilds the local
    /// decision domain as exactly the declared cone, replacing whatever
    /// cone a previous query on this (pooled) solver declared. Declaring
    /// roots is no longer required for imports to stick (imports over
    /// dormant cones shelve and replay on activation), but declaring them
    /// up front lets a vault fetch or exchange drain install its clauses
    /// immediately instead of through the shelf. Sound at any point (it
    /// only installs constraints the full formula already contains).
    pub fn declare_roots<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        if !self.use_domain {
            self.activate_for_lits(lits);
            return;
        }
        let roots: Vec<Lit> = lits.into_iter().collect();
        self.activate_for_lits(roots.iter().copied());
        self.rebuild_domain(&roots);
    }

    /// Rebuilds the local decision domain as the definitional cone of
    /// `roots` (plus any solver-local root variables the arena does not
    /// know). Membership is generation-stamped, so replacing the previous
    /// query's domain is O(new cone), not O(vars).
    fn rebuild_domain(&mut self, roots: &[Lit]) {
        self.domain.reset();
        self.domain.reserve_keys(self.assigns.len());
        let members: Vec<usize> = match &self.shared {
            Some(sh) => {
                let arena_vars = sh.num_vars();
                let mut m: Vec<usize> = sh
                    .cone_vars(roots.iter().map(|l| l.var()))
                    .into_iter()
                    .map(|v| v.index())
                    .collect();
                m.extend(
                    roots
                        .iter()
                        .map(|l| l.var().index())
                        .filter(|&v| v >= arena_vars),
                );
                m
            }
            None => roots.iter().map(|l| l.var().index()).collect(),
        };
        for v in members {
            if v < self.assigns.len()
                && self.domain.add(v)
                && self.assigns[v] == LBool::Undef
                && self.var_active[v]
            {
                self.domain.enqueue(v, &self.activity);
            }
        }
    }

    /// Activates every dormant gate variable of `lits`, transitively
    /// through their defining cones. No-op on eager solvers. Cancels to
    /// level 0 first: every call site is a level-0 boundary (solve entry,
    /// clause add), and watcher installation must not race a live trail.
    fn activate_for_lits<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        if !self.lazy || !self.ok {
            return;
        }
        let want: Vec<Var> = lits
            .into_iter()
            .map(|l| l.var())
            .filter(|v| v.index() < self.var_active.len() && !self.var_active[v.index()])
            .collect();
        if !want.is_empty() {
            self.cancel_until(0);
            self.activate_vars(want);
        }
    }

    /// Activates each listed dormant gate variable: installs watchers for
    /// the clauses *defining* it ([`crate::CnfLayer::gate_defs`]) and,
    /// transitively, activates every dormant variable those clauses
    /// mention. The closure maintains the invariant that an installed
    /// clause's variables are all active — so a dormant gate appears in no
    /// watched clause and can never be assigned, watched, or branched on —
    /// and, symmetrically, that an active gate's defining clauses are all
    /// installed, so an active gate is always constrained to its defining
    /// function.
    ///
    /// Runs at decision level 0, replaying each installed clause against
    /// the level-0 trail exactly as eager attach-time propagation would
    /// have: a clause already satisfied at level 0 is skipped for good
    /// (level-0 assignments are permanent), a falsified clause fails the
    /// solver, an asserting clause enqueues its literal with the shared
    /// clause as reason (so skeleton purity flows through
    /// [`Solver::unchecked_enqueue`] exactly as in live propagation), and
    /// anything else gets two watchers on non-false literals. One
    /// propagation pass at the end replays the consequences. Soundness
    /// (DESIGN §3b): activation only ever *adds* constraints the full
    /// formula already contains, so no model is gained; and a dormant
    /// gate is definitional — its unwatched defining clauses are
    /// satisfiable by construction given any assignment to the active
    /// variables, and no active clause mentions the gate — so no
    /// observable model is lost.
    fn activate_vars(&mut self, mut worklist: Vec<Var>) {
        let shared = self.shared.clone().expect("activation requires an arena");
        debug_assert_eq!(self.decision_level(), 0);
        let mut touched = false;
        // Shelf slots whose last dormant variable wakes in this closure;
        // replayed (as ordinary imports) once the closure and its level-0
        // propagation settle.
        let mut replay: Vec<u32> = Vec::new();
        while let Some(v) = worklist.pop() {
            if self.var_active[v.index()] {
                continue;
            }
            self.var_active[v.index()] = true;
            // Re-enter the branching heap: the variable may have been
            // popped and discarded while inactive (insert is a no-op if it
            // is still there).
            self.heap.insert(v.index(), &self.activity);
            touched = true;
            // Wake the shelf parked on this variable: each slot re-parks on
            // another still-dormant variable of its clause, or — when this
            // was the last one — queues for replay. Dormant variables found
            // here are *not* pushed on the worklist: a shelved import must
            // never widen the activation closure.
            for slot in std::mem::take(&mut self.shelf_watch[v.index()]) {
                let next_dormant = match self.shelved[slot as usize].as_ref() {
                    None => continue,
                    Some((lits, _, _)) => lits
                        .iter()
                        .map(|l| l.var().index())
                        .find(|&w| !self.var_active[w]),
                };
                match next_dormant {
                    Some(w) => self.shelf_watch[w].push(slot),
                    None => replay.push(slot),
                }
            }
            let li = shared.layer_of_var(v);
            let layer = &shared.layers()[li];
            let clause_base = shared.layer_clause_range(li).start;
            let pure = layer.is_skeleton();
            for def in layer.gate_defs(v) {
                let ci = match def {
                    crate::GateDef::Unit(u) => {
                        match self.lit_value(u) {
                            LBool::True => {
                                if pure {
                                    self.zero_pure[u.var().index()] = true;
                                }
                            }
                            LBool::False => {
                                self.ok = false;
                                return;
                            }
                            LBool::Undef => {
                                self.zero_pure[u.var().index()] = pure;
                                self.unchecked_enqueue(u, None);
                            }
                        }
                        continue;
                    }
                    crate::GateDef::Clause(local) => clause_base + local,
                };
                let cl = shared.clause(ci);
                let mut satisfied = false;
                let mut free = [0u32; 2];
                let mut n_free = 0usize;
                // One scan does double duty: classify the clause against
                // the level-0 trail and discover which dormant inputs it
                // drags in (no early exit — the dependency scan must see
                // every literal).
                for (j, &l) in cl.iter().enumerate() {
                    if !self.var_active[l.var().index()] {
                        worklist.push(l.var());
                    }
                    match self.lit_value(l) {
                        LBool::True => satisfied = true,
                        LBool::False => {}
                        LBool::Undef => {
                            if n_free < 2 {
                                free[n_free] = j as u32;
                            }
                            n_free += 1;
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                let cref = SHARED_BIT | ci as u32;
                match n_free {
                    0 => {
                        self.ok = false;
                        return;
                    }
                    1 => {
                        self.unchecked_enqueue(cl[free[0] as usize], Some(cref));
                    }
                    _ => {
                        self.shared_watch[ci] = free;
                        self.watches[cl[free[0] as usize].code()].push(Watcher {
                            cref,
                            blocker: cl[free[1] as usize],
                        });
                        self.watches[cl[free[1] as usize].code()].push(Watcher {
                            cref,
                            blocker: cl[free[0] as usize],
                        });
                    }
                }
            }
        }
        if touched && self.propagate().is_some() {
            self.ok = false;
        }
        // Replay fully-awake shelved imports. Runs after the closure's own
        // propagation so the imports land on a settled level-0 trail; each
        // replay goes through the normal import path (which re-checks
        // satisfaction/units and may fail the solver on a genuine
        // level-0 conflict).
        for slot in replay {
            if !self.ok {
                break;
            }
            if let Some((lits, lbd, pure)) = self.shelved[slot as usize].take() {
                self.stats.shelved_replayed += 1;
                self.import_clause(lits, lbd, pure);
            }
        }
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: Option<u32>) {
        debug_assert_eq!(self.lit_value(l), LBool::Undef);
        let v = l.var().index();
        if self.trail_lim.is_empty() {
            // A level-0 assignment: record whether it is derivable from
            // skeleton clauses alone. Propagations inherit purity from
            // their reason clause and its (level-0, already assigned)
            // other literals; reasonless level-0 enqueues have their
            // purity pre-set by the caller in `zero_pure`.
            if let Some(cr) = reason {
                let mut pure = self.clause_pure(cr);
                if pure {
                    for j in 0..self.clause_len(cr) {
                        let q = self.clause_lit(cr, j);
                        if q != l {
                            pure &= self.zero_pure[q.var().index()];
                        }
                    }
                }
                self.zero_pure[v] = pure;
            }
        }
        self.assigns[v] = LBool::from_bool(l.is_positive());
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation. Returns the conflicting clause reference, if any.
    fn propagate(&mut self) -> Option<u32> {
        let shared = self.shared.clone();
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // Clauses watching ¬p must be inspected: ¬p just became false.
            let false_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            while i < ws.len() {
                let w = ws[i];
                if self.lit_value(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                if w.cref & SHARED_BIT != 0 {
                    // Shared clause: the literals are immutable, so instead
                    // of swapping watched literals to the front we track the
                    // two watched positions in `shared_watch`.
                    let idx = (w.cref & !SHARED_BIT) as usize;
                    let cl = shared
                        .as_ref()
                        .expect("shared watcher implies attached arena")
                        .clause(idx);
                    let mut wp = self.shared_watch[idx];
                    // Normalize so position 1 watches the false literal.
                    if cl[wp[0] as usize] == false_lit {
                        wp.swap(0, 1);
                        self.shared_watch[idx] = wp;
                    }
                    debug_assert_eq!(cl[wp[1] as usize], false_lit);
                    let first = cl[wp[0] as usize];
                    if first != w.blocker && self.lit_value(first) == LBool::True {
                        ws[i].blocker = first;
                        i += 1;
                        continue;
                    }
                    // Look for a replacement watch.
                    let mut found = None;
                    for (k, &q) in cl.iter().enumerate() {
                        if k != wp[0] as usize
                            && k != wp[1] as usize
                            && self.lit_value(q) != LBool::False
                        {
                            found = Some(k);
                            break;
                        }
                    }
                    if let Some(k) = found {
                        self.shared_watch[idx] = [wp[0], k as u32];
                        self.watches[cl[k].code()].push(Watcher {
                            cref: w.cref,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        continue;
                    }
                    // No replacement: clause is unit or conflicting.
                    if self.lit_value(first) == LBool::False {
                        self.qhead = self.trail.len();
                        self.watches[false_lit.code()] = ws;
                        return Some(w.cref);
                    }
                    self.unchecked_enqueue(first, Some(w.cref));
                    i += 1;
                    continue;
                }
                // Local clause: its literals live in the flat arena.
                // Deletion detaches watchers eagerly, so every watcher
                // reaching this point is live.
                let cref = w.cref;
                debug_assert!(!self.ca.is_deleted(cref));
                // Normalize so the false literal is at index 1.
                if self.ca.lit(cref, 0) == false_lit {
                    self.ca.swap_lits(cref, 0, 1);
                }
                debug_assert_eq!(self.ca.lit(cref, 1), false_lit);
                let first = self.ca.lit(cref, 0);
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                let mut found = None;
                for k in 2..self.ca.len(cref) {
                    if self.lit_value(self.ca.lit(cref, k)) != LBool::False {
                        found = Some(k);
                        break;
                    }
                }
                if let Some(k) = found {
                    let q = self.ca.lit(cref, k);
                    self.ca.swap_lits(cref, 1, k);
                    self.watches[q.code()].push(Watcher {
                        cref: w.cref,
                        blocker: first,
                    });
                    ws.swap_remove(i);
                    continue;
                }
                // No replacement: clause is unit or conflicting.
                if self.lit_value(first) == LBool::False {
                    // Conflict: restore the remaining watchers and bail.
                    self.qhead = self.trail.len();
                    self.watches[false_lit.code()] = ws;
                    return Some(w.cref);
                }
                self.unchecked_enqueue(first, Some(w.cref));
                i += 1;
            }
            self.watches[false_lit.code()] = ws;
        }
        None
    }

    fn cancel_until(&mut self, target: usize) {
        if self.decision_level() <= target {
            return;
        }
        let lim = self.trail_lim[target];
        for i in (lim..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            self.polarity[v] = l.is_positive();
            self.assigns[v] = LBool::Undef;
            self.reason[v] = None;
            self.heap.insert(v, &self.activity);
            // Domain members become decidable locally again (no-op for
            // non-members and while no domain is built).
            self.domain.enqueue(v, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(target);
        self.qhead = lim;
    }

    fn var_bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1.0 / RESCALE_LIMIT;
            }
            self.var_inc *= 1.0 / RESCALE_LIMIT;
            self.heap.rescaled();
        }
        self.heap.increased(v, &self.activity);
        self.domain.increased(v, &self.activity);
    }

    fn clause_bump(&mut self, cref: u32) {
        let a = self.ca.activity(cref) + self.cla_inc as f32;
        self.ca.set_activity(cref, a);
        if a as f64 > RESCALE_LIMIT_CLA {
            for i in 0..self.learnt_refs.len() {
                let c = self.learnt_refs[i];
                let scaled = self.ca.activity(c) * (1.0 / RESCALE_LIMIT_CLA) as f32;
                self.ca.set_activity(c, scaled);
            }
            self.cla_inc *= 1.0 / RESCALE_LIMIT_CLA;
        }
    }

    /// Recomputes a clause's LBD from the current assignment levels. Only
    /// meaningful while every literal of the clause is assigned — true for
    /// any clause expanded during conflict analysis. Level-0 literals are
    /// skipped: inprocessing is entitled to strip them.
    fn clause_lbd_now(&mut self, cref: u32) -> u32 {
        self.lbd_gen += 1;
        let mut lbd = 0u32;
        for j in 0..self.ca.len(cref) {
            let lev = self.level[self.ca.lit(cref, j).var().index()] as usize;
            if lev == 0 {
                continue;
            }
            if lev >= self.lbd_seen.len() {
                self.lbd_seen.resize(lev + 1, 0);
            }
            if self.lbd_seen[lev] != self.lbd_gen {
                self.lbd_seen[lev] = self.lbd_gen;
                lbd += 1;
            }
        }
        lbd.max(1)
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first), the backtrack level, the clause's LBD, and its
    /// skeleton purity.
    ///
    /// The learnt clause is a resolvent of the conflict clause and the
    /// reason clauses expanded along the way (including those used to
    /// minimize it), strengthened by dropping literals false at level 0.
    /// It is therefore skeleton-pure iff every one of those antecedent
    /// clauses is pure *and* every dropped level-0 literal's assignment
    /// was itself derived purely ([`Solver::zero_pure`]).
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, usize, u32, bool) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for asserting lit
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = confl;
        let mut to_clear: Vec<usize> = Vec::new();
        let dl = self.decision_level() as u32;
        let mut pure = true;

        loop {
            pure &= self.clause_pure(confl);
            if confl & SHARED_BIT == 0 && self.ca.is_learnt(confl) {
                self.clause_bump(confl);
                // MID-tier probation: a use between two reductions is what
                // keeps a MID clause from demoting.
                self.ca.set_used(confl, true);
                // Glucose-style tightening: a clause showing up in conflicts
                // with fewer distinct levels than at learn time is more
                // valuable than its stored LBD claims — refile it.
                let stored = self.ca.lbd(confl);
                if stored > CORE_LBD {
                    let fresh = self.clause_lbd_now(confl);
                    if fresh < stored {
                        self.set_learnt_lbd(confl, fresh);
                    }
                }
            }
            for j in 0..self.clause_len(confl) {
                let q = self.clause_lit(confl, j);
                if p == Some(q) {
                    continue; // the literal this clause propagated
                }
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    to_clear.push(v);
                    self.var_bump(v);
                    if self.level[v] >= dl {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                } else if self.level[v] == 0 {
                    // Level-0 literals are silently dropped from the learnt
                    // clause; that strengthening resolves against their
                    // level-0 derivations.
                    pure &= self.zero_pure[v];
                }
            }
            // Select the next implication-graph node to expand.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = self.reason[pl.var().index()].expect("non-decision must have a reason");
        }
        learnt[0] = !p.expect("1UIP exists");

        // Basic clause minimization: drop literals implied by the rest.
        // Each drop is one more resolution step (against the literal's
        // reason clause), so purity flows through it like any antecedent.
        let mut j = 1;
        for i in 1..learnt.len() {
            let l = learnt[i];
            let keep = match self.reason[l.var().index()] {
                None => true,
                Some(r) => (0..self.clause_len(r)).any(|k| {
                    let q = self.clause_lit(r, k);
                    q != !l && !self.seen[q.var().index()] && self.level[q.var().index()] > 0
                }),
            };
            if keep {
                learnt[j] = l;
                j += 1;
            } else {
                let r = self.reason[l.var().index()].expect("dropped literal has a reason");
                pure &= self.clause_pure(r);
                if pure {
                    for k in 0..self.clause_len(r) {
                        let q = self.clause_lit(r, k);
                        if self.level[q.var().index()] == 0 {
                            pure &= self.zero_pure[q.var().index()];
                        }
                    }
                }
            }
        }
        learnt.truncate(j);

        // Backtrack level: highest level among the non-asserting literals.
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()] as usize
        };

        // LBD: distinct decision levels among the learnt literals.
        self.lbd_gen += 1;
        let mut lbd = 0u32;
        for &l in &learnt {
            let lev = self.level[l.var().index()] as usize;
            if lev >= self.lbd_seen.len() {
                self.lbd_seen.resize(lev + 1, 0);
            }
            if self.lbd_seen[lev] != self.lbd_gen {
                self.lbd_seen[lev] = self.lbd_gen;
                lbd += 1;
            }
        }

        for v in to_clear {
            self.seen[v] = false;
        }
        (learnt, bt, lbd, pure)
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        // Two-level branching: while this solve has a live decision
        // domain, prefer the highest-activity variable of the declared
        // cone; only once the cone is fully assigned fall through to the
        // global heap. Popping from the local heap leaves the variable in
        // the global heap (and vice versa) — the stale entry is skipped by
        // the `Undef` check when it surfaces.
        if self.domain_active {
            while let Some(v) = self.domain.pop(&self.activity) {
                if self.assigns[v] == LBool::Undef && self.var_active[v] {
                    self.stats.domain_decisions += 1;
                    return Some(Var(v as u32));
                }
            }
        }
        // Inactive (dormant-cone) variables are skipped: nothing watches
        // them, so assigning one could never propagate or conflict — it
        // would only pad the trail. They re-enter the heap on activation.
        while let Some(v) = self.heap.pop_max(&self.activity) {
            if self.assigns[v] == LBool::Undef && self.var_active[v] {
                return Some(Var(v as u32));
            }
        }
        None
    }

    /// Shrinks the learnt database. Tiered mode (default): CORE clauses
    /// (LBD ≤ 2) are immortal, MID clauses that sat out the whole period
    /// since the previous reduction demote to LOCAL, and the
    /// lowest-activity half of the LOCAL tier is deleted. Legacy mode
    /// ([`Solver::set_tiered_retention`] off) halves the whole database by
    /// activity. Either way only *redundant* clauses are deleted, so the
    /// model set is untouched.
    fn reduce_db(&mut self) {
        let mut pool: Vec<u32> = if self.tiered {
            for i in 0..self.learnt_refs.len() {
                let c = self.learnt_refs[i];
                if self.ca.tier(c) == TIER_MID {
                    if self.ca.is_used(c) {
                        self.ca.set_used(c, false);
                    } else {
                        self.move_tier(c, TIER_LOCAL);
                    }
                }
            }
            self.learnt_refs
                .iter()
                .copied()
                .filter(|&c| {
                    self.ca.tier(c) == TIER_LOCAL && self.ca.len(c) > 2 && !self.is_locked(c)
                })
                .collect()
        } else {
            self.learnt_refs
                .iter()
                .copied()
                .filter(|&c| self.ca.len(c) > 2 && !self.is_locked(c))
                .collect()
        };
        pool.sort_by(|&a, &b| {
            self.ca
                .activity(a)
                .partial_cmp(&self.ca.activity(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        pool.truncate(pool.len() / 2);
        self.remove_clauses(&pool);
        if self.ca.should_gc() {
            self.garbage_collect();
        }
    }

    fn is_locked(&self, cref: u32) -> bool {
        let first = self.ca.lit(cref, 0);
        self.lit_value(first) == LBool::True && self.reason[first.var().index()] == Some(cref)
    }

    /// Removes `cref`'s two watchers. Safe to call on an already-detached
    /// clause (the scans simply find nothing).
    fn detach_clause(&mut self, cref: u32) {
        for j in 0..2 {
            let l = self.ca.lit(cref, j);
            let ws = &mut self.watches[l.code()];
            if let Some(p) = ws.iter().position(|w| w.cref == cref) {
                ws.swap_remove(p);
            }
        }
    }

    /// Detaches and frees a batch of live local clauses. Staged: first
    /// mark and detach everything, then purge the cref index lists, then
    /// free the arena blocks — so free-list reuse can never hand a block
    /// to a new clause while a stale cref to it survives in any list.
    /// Callers guarantee no victim is locked (a reason clause).
    fn remove_clauses(&mut self, victims: &[u32]) {
        if victims.is_empty() {
            return;
        }
        for &c in victims {
            debug_assert!(!self.is_locked(c));
            self.detach_clause(c);
            if self.ca.is_learnt(c) {
                self.n_tier[self.ca.tier(c) as usize] -= 1;
            }
            self.ca.set_deleted(c);
        }
        let ca = &self.ca;
        self.learnt_refs.retain(|&c| !ca.is_deleted(c));
        self.local_clauses.retain(|&c| !ca.is_deleted(c));
        self.fresh_learnts.retain(|&c| !ca.is_deleted(c));
        self.subsume_queue.retain(|&c| !ca.is_deleted(c));
        for &c in victims {
            self.ca.free(c);
        }
    }

    /// Compacts the local arena: copies every live clause into a fresh slab
    /// and rewrites all crefs — watchers, reasons, and the clause index
    /// lists — through the relocation forwarding pointers. Sound at any
    /// decision level: only addresses change, never content. Shared crefs
    /// (high bit set) are untouched; shelved clauses store literal vectors,
    /// not crefs, so the shelf needs no pass.
    fn garbage_collect(&mut self) {
        let before = self.ca.data_len();
        let mut to = ClauseArena::with_capacity(before - self.ca.wasted());
        for ws in &mut self.watches {
            for w in ws.iter_mut() {
                if w.cref & SHARED_BIT == 0 {
                    w.cref = self.ca.reloc(w.cref, &mut to);
                }
            }
        }
        for cr in self.reason.iter_mut().flatten() {
            if *cr & SHARED_BIT == 0 {
                *cr = self.ca.reloc(*cr, &mut to);
            }
        }
        for c in self.local_clauses.iter_mut() {
            *c = self.ca.reloc(*c, &mut to);
        }
        for c in self.learnt_refs.iter_mut() {
            *c = self.ca.reloc(*c, &mut to);
        }
        for c in self.fresh_learnts.iter_mut() {
            *c = self.ca.reloc(*c, &mut to);
        }
        for c in self.subsume_queue.iter_mut() {
            *c = self.ca.reloc(*c, &mut to);
        }
        self.stats.gc_runs += 1;
        self.stats.gc_reclaimed_words += (before - to.data_len()) as u64;
        self.ca = to;
    }

    /// Level-0 inprocessing: purge satisfied clauses, strip false
    /// literals, drop this solver's watchers on level-0-satisfied shared
    /// clauses, run the queued subsumption pass, and compact the arena
    /// when it got wasteful. The satisfied-purge leg runs at the classic
    /// `simpDB_assigns`/`simpDB_props` cadence — it can only find work
    /// after new level-0 facts arrived — while the subsumption leg is
    /// driven by its queue of newly landed learnts, which fills
    /// regardless of the level-0 trail. Everything here only deletes
    /// satisfied clauses or strengthens implied ones, so the solver's
    /// model set — and downstream, the enumerated suite bytes — are
    /// untouched.
    fn simplify(&mut self) {
        if !self.ok || !self.inprocess || self.decision_level() != 0 {
            return;
        }
        if self.propagate().is_some() {
            self.ok = false;
            return;
        }
        let cadence = self.trail.len() != self.simp_db_assigns
            && self.stats.propagations >= self.simp_db_props;
        if !cadence && self.subsume_queue.is_empty() {
            return;
        }
        // Level-0 assignments are permanent: conflict analysis never
        // expands their reasons, so the reason links can be dropped — which
        // is what makes their (locked) reason clauses removable.
        for i in 0..self.trail.len() {
            self.reason[self.trail[i].var().index()] = None;
        }
        if cadence {
            self.remove_satisfied();
        }
        self.subsumption_pass();
        if self.ok && self.ca.should_gc() {
            self.garbage_collect();
        }
        if cadence {
            self.simp_db_assigns = self.trail.len();
            let shared_lits = self.shared.as_ref().map_or(0, |s| s.num_lits());
            self.simp_db_props =
                self.stats.propagations + (self.ca.live_lits() + shared_lits) as u64;
        }
    }

    /// Drops local clauses satisfied at level 0, strips literals false at
    /// level 0 from the survivors, and removes this solver's watchers on
    /// satisfied shared clauses. After a clean level-0 propagate a
    /// surviving clause's two watched literals are both unassigned (a false
    /// watch with a non-true partner would have propagated or conflicted),
    /// so false literals only sit at positions ≥ 2 and stripping never
    /// moves a watch.
    fn remove_satisfied(&mut self) {
        let mut victims: Vec<u32> = Vec::new();
        let n_learnt = self.learnt_refs.len();
        let n_total = n_learnt + self.local_clauses.len();
        for i in 0..n_total {
            let c = if i < n_learnt {
                self.learnt_refs[i]
            } else {
                self.local_clauses[i - n_learnt]
            };
            if self
                .ca
                .iter_lits(c)
                .any(|l| self.lit_value(l) == LBool::True)
            {
                victims.push(c);
            } else {
                self.strip_false_lits(c);
            }
        }
        self.stats.simplify_removed += victims.len() as u64;
        self.remove_clauses(&victims);
        if self.shared.is_none() {
            return;
        }
        // Shared clauses are immutable and shared, but the watchers on them
        // are private to this solver: dropping both ends a satisfied
        // clause's participation in propagation for good (level-0
        // assignments are permanent). Each active shared clause holds
        // exactly two watchers, hence the halving.
        let shared = self.shared.clone().expect("checked above");
        let mut dropped = 0u64;
        for code in 0..self.watches.len() {
            let mut ws = std::mem::take(&mut self.watches[code]);
            ws.retain(|w| {
                if w.cref & SHARED_BIT == 0 {
                    return true;
                }
                let cl = shared.clause((w.cref & !SHARED_BIT) as usize);
                let sat = cl.iter().any(|&l| self.lit_value(l) == LBool::True);
                if sat {
                    dropped += 1;
                }
                !sat
            });
            self.watches[code] = ws;
        }
        self.stats.simplify_removed += dropped / 2;
    }

    /// Removes literals false at level 0 from `cref` (positions ≥ 2 only —
    /// see [`Solver::remove_satisfied`] for why the watches are clean).
    /// Each removal resolves against the literal's level-0 derivation, so
    /// purity demotes unless that derivation was itself pure.
    fn strip_false_lits(&mut self, cref: u32) {
        let mut j = 2;
        while j < self.ca.len(cref) {
            let l = self.ca.lit(cref, j);
            if self.lit_value(l) == LBool::False {
                if !self.zero_pure[l.var().index()] {
                    self.ca.set_skeleton(cref, false);
                }
                self.ca.remove_lit(cref, j);
                self.stats.strengthened += 1;
            } else {
                j += 1;
            }
        }
    }

    /// Backward subsumption + self-subsuming resolution over the clauses
    /// learnt (or imported) since the last pass. Candidates and victims
    /// are all learnt clauses — redundant by construction — so deleting a
    /// subsumed one or strengthening one by resolution only prunes; the
    /// original formula and its model set are untouched.
    fn subsumption_pass(&mut self) {
        let queue = std::mem::take(&mut self.subsume_queue);
        if queue.is_empty() {
            return;
        }
        // The pass is scoped to this batch of freshly landed clauses —
        // both the subsuming and the subsumed side. A clause that just
        // arrived has no embedding in the ongoing search, so deduplicating
        // and strengthening *within* the batch (vault seeds and bus
        // imports arrive in bursts full of near-duplicates) is pure
        // savings; deleting or rewriting an *established* learnt, although
        // equally sound, rips out structure the pooled solver's search
        // already leans on and was measured as a net propagation loss on
        // the bound-5 sweep. Established clauses are retired by the
        // retention policy (`reduce_db`) and the satisfied-purge leg
        // instead.
        //
        // Occurrence lists (by variable, complement-insensitive) over the
        // batch. Entries go stale as the pass deletes and strengthens;
        // `is_deleted` and the literal re-check below make stale entries
        // harmless.
        let mut occ: Vec<Vec<u32>> = vec![Vec::new(); self.assigns.len()];
        for &c in &queue {
            if self.ca.is_deleted(c) {
                continue;
            }
            for l in self.ca.iter_lits(c) {
                occ[l.var().index()].push(c);
            }
        }
        // Literal stamps for the O(|C| + |D|) subset test.
        let mut stamp: Vec<u64> = vec![0; 2 * self.assigns.len()];
        let mut gen: u64 = 0;
        for &c in &queue {
            if !self.ok {
                break;
            }
            if self.ca.is_deleted(c) {
                continue;
            }
            let c_len = self.ca.len(c);
            let c_pure = self.ca.is_skeleton(c);
            // Scan the occurrence list of C's rarest variable.
            let best = self
                .ca
                .iter_lits(c)
                .map(|l| l.var().index())
                .min_by_key(|&v| occ[v].len())
                .expect("clauses are never empty");
            for &d in &occ[best] {
                if d == c || self.ca.is_deleted(d) || self.ca.is_deleted(c) {
                    continue;
                }
                if self.ca.len(d) < c_len {
                    continue;
                }
                // Stamp D's literals, then walk C: every literal of C must
                // appear in D, with at most one appearing complemented.
                gen += 1;
                for l in self.ca.iter_lits(d) {
                    stamp[l.code()] = gen;
                }
                let mut flipped: Option<Lit> = None;
                let mut subset = true;
                for l in self.ca.iter_lits(c) {
                    if stamp[l.code()] == gen {
                        continue;
                    }
                    if stamp[(!l).code()] == gen && flipped.is_none() {
                        flipped = Some(!l);
                        continue;
                    }
                    subset = false;
                    break;
                }
                if !subset {
                    continue;
                }
                match flipped {
                    None => {
                        // C ⊆ D: D is redundant.
                        self.stats.subsumed += 1;
                        self.remove_clauses(&[d]);
                    }
                    Some(fl) => {
                        // Self-subsuming resolution: C ⊗ D on fl's variable
                        // yields D \ {fl} — strengthen D in place.
                        self.strengthen_clause(d, fl, c_pure);
                        if !self.ok {
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Removes literal `l` from live clause `cref` (the resolvent of a
    /// self-subsuming resolution whose other antecedent has purity
    /// `resolvent_pure`), re-establishing the watch invariants against the
    /// current level-0 trail: the shrunken clause may have become
    /// satisfied, unit, or even empty through units enqueued earlier in the
    /// same pass.
    fn strengthen_clause(&mut self, cref: u32, l: Lit, resolvent_pure: bool) {
        debug_assert_eq!(self.decision_level(), 0);
        self.stats.strengthened += 1;
        if !resolvent_pure {
            self.ca.set_skeleton(cref, false);
        }
        self.detach_clause(cref);
        let pos = self
            .ca
            .iter_lits(cref)
            .position(|q| q == l)
            .expect("strengthened literal must be present");
        let pure = self.ca.is_skeleton(cref);
        if self.ca.len(cref) == 2 {
            let unit = self.ca.lit(cref, 1 - pos);
            self.remove_clauses(&[cref]);
            self.settle_unit(unit, pure);
            return;
        }
        self.ca.remove_lit(cref, pos);
        let mut satisfied = false;
        let mut free = [0usize; 2];
        let mut n_free = 0usize;
        for j in 0..self.ca.len(cref) {
            match self.lit_value(self.ca.lit(cref, j)) {
                LBool::True => {
                    satisfied = true;
                    break;
                }
                LBool::False => {}
                LBool::Undef => {
                    if n_free < 2 {
                        free[n_free] = j;
                    }
                    n_free += 1;
                }
            }
        }
        if satisfied {
            self.stats.simplify_removed += 1;
            self.remove_clauses(&[cref]);
            return;
        }
        match n_free {
            0 => {
                self.ok = false;
                self.remove_clauses(&[cref]);
            }
            1 => {
                let unit = self.ca.lit(cref, free[0]);
                // The implied unit resolves the clause against the level-0
                // derivations of its false literals.
                let mut up = pure;
                for j in 0..self.ca.len(cref) {
                    let q = self.ca.lit(cref, j);
                    if q != unit {
                        up &= self.zero_pure[q.var().index()];
                    }
                }
                self.remove_clauses(&[cref]);
                self.settle_unit(unit, up);
            }
            _ => {
                // The two free positions come out of one ascending scan
                // (free[1] > free[0]), so the first swap cannot displace
                // the second's literal.
                self.ca.swap_lits(cref, 0, free[0]);
                self.ca.swap_lits(cref, 1, free[1]);
                let l0 = self.ca.lit(cref, 0);
                let l1 = self.ca.lit(cref, 1);
                self.watches[l0.code()].push(Watcher { cref, blocker: l1 });
                self.watches[l1.code()].push(Watcher { cref, blocker: l0 });
            }
        }
    }

    /// Records a unit clause derived at level 0 by inprocessing: exported
    /// like any learnt unit, enqueued, and propagated.
    fn settle_unit(&mut self, l: Lit, pure: bool) {
        self.fresh_units.push((l, pure));
        match self.lit_value(l) {
            LBool::True => {
                if pure {
                    self.zero_pure[l.var().index()] = true;
                }
            }
            LBool::False => self.ok = false,
            LBool::Undef => {
                self.zero_pure[l.var().index()] = pure;
                self.unchecked_enqueue(l, None);
                if self.propagate().is_some() {
                    self.ok = false;
                } else {
                    // The propagation recorded fresh level-0 reasons; drop
                    // them so the rest of the pass can still delete any
                    // clause (same argument as in `simplify`).
                    for i in 0..self.trail.len() {
                        self.reason[self.trail[i].var().index()] = None;
                    }
                }
            }
        }
    }

    /// Exports the clauses learnt since the last exchange point.
    ///
    /// When a shared arena is attached, clauses mentioning any solver-local
    /// variable (one allocated after the arena's, e.g. an activation guard
    /// or a demand-translated Tseitin gate) are withheld: local indices are
    /// private to this solver and would alias unrelated variables at a
    /// peer. This is also what keeps guarded-blocking derivations — valid
    /// only under this solver's own guard assumption — from ever leaving.
    fn export_fresh(&mut self, exchange: &mut dyn ClauseExchange) {
        let exportable = self.shared.as_ref().map_or(usize::MAX, |s| s.num_vars());
        for (l, pure) in std::mem::take(&mut self.fresh_units) {
            if l.var().index() < exportable {
                exchange.export(&[l], 1, pure);
            }
        }
        for cref in std::mem::take(&mut self.fresh_learnts) {
            // Deleted clauses were already purged from `fresh_learnts` by
            // `remove_clauses`; only provenance filters remain.
            if self.ca.is_imported(cref)
                || self
                    .ca
                    .iter_lits(cref)
                    .any(|l| l.var().index() >= exportable)
            {
                continue;
            }
            let lits = self.ca.copy_lits(cref);
            exchange.export(&lits, self.ca.lbd(cref), self.ca.is_skeleton(cref));
        }
    }

    /// Imports pending peer clauses. Must be called at decision level 0.
    fn import_pending(&mut self, exchange: &mut dyn ClauseExchange) {
        debug_assert_eq!(self.decision_level(), 0);
        let mut buf = Vec::new();
        exchange.fetch(&mut buf);
        for (lits, lbd, pure) in buf {
            if !self.ok {
                break;
            }
            self.import_clause(lits, lbd, pure);
        }
    }

    /// Runs CDCL search for up to `budget` conflicts.
    ///
    /// Returns `Some(result)` on a definitive answer, `None` when the conflict
    /// budget was exhausted (caller restarts).
    fn search(&mut self, budget: u64, assumptions: &[Lit]) -> Option<SolveResult> {
        let mut conflicts = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Some(SolveResult::Unsat);
                }
                if self.decision_level() <= assumptions.len() {
                    // Conflict among the assumptions themselves.
                    return Some(SolveResult::Unsat);
                }
                let (learnt, bt, lbd, pure) = self.analyze(confl);
                // Never backtrack past the assumption levels.
                let bt = bt.max(self.trail_lim.len().min(assumptions.len()).min(bt));
                self.cancel_until(bt);
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    // A learnt unit is a resolvent of database clauses, so
                    // it is exportable like any other learnt clause.
                    self.fresh_units.push((asserting, pure));
                    if self.decision_level() == 0 {
                        if self.lit_value(asserting) == LBool::False {
                            self.ok = false;
                            return Some(SolveResult::Unsat);
                        }
                        if self.lit_value(asserting) == LBool::Undef {
                            self.zero_pure[asserting.var().index()] = pure;
                            self.unchecked_enqueue(asserting, None);
                        }
                    } else {
                        // Backtracked to an assumption level with a unit
                        // learnt clause: record it at level 0 next restart.
                        if self.lit_value(asserting) == LBool::Undef {
                            self.unchecked_enqueue(asserting, None);
                        } else if self.lit_value(asserting) == LBool::False {
                            return Some(SolveResult::Unsat);
                        }
                    }
                } else {
                    let cref = self.attach_new_clause(learnt, true);
                    self.set_learnt_lbd(cref, lbd.max(1));
                    self.ca.set_skeleton(cref, pure);
                    self.fresh_learnts.push(cref);
                    if self.subsume_queue.len() < SUBSUME_QUEUE_CAP {
                        self.subsume_queue.push(cref);
                    }
                    self.unchecked_enqueue(self.ca.lit(cref, 0), Some(cref));
                }
                self.var_inc /= VAR_DECAY;
                self.cla_inc /= CLA_DECAY;
                // Size-triggered reduction: fire when the live learnt
                // count outgrows its budget, however many conflicts that
                // takes (the budget growth guarantees forward progress even
                // when most of the database is binary or locked). Both
                // retention modes share the trigger — they differ only in
                // *which* clauses a reduction keeps — so a small database
                // is never pruned: on this workload learnts prune
                // enumeration hard, and early deletion costs more
                // propagations than the clauses' upkeep.
                if self.learnt_refs.len() as f64 > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= LEARNT_BUDGET_GROWTH;
                }
            } else {
                if conflicts >= budget {
                    return None; // restart
                }
                // Establish assumptions one level at a time.
                if self.decision_level() < assumptions.len() {
                    let p = assumptions[self.decision_level()];
                    match self.lit_value(p) {
                        LBool::True => {
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => return Some(SolveResult::Unsat),
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(p, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        self.model = self.assigns.clone();
                        return Some(SolveResult::Sat);
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.polarity[v.index()];
                        self.unchecked_enqueue(Lit::new(v, phase), None);
                    }
                }
            }
        }
    }
}

/// The Luby restart sequence: 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,…
fn luby(mut x: u64) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}
#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    fn lit(s: &mut Solver, v: &mut Vec<Var>, i: usize, pos: bool) -> Lit {
        while v.len() <= i {
            v.push(s.new_var());
        }
        Lit::new(v[i], pos)
    }

    #[test]
    fn luby_sequence() {
        let expect = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn simple_implication_chain() {
        let mut s = Solver::new();
        let vs: Vec<Var> = (0..10).map(|_| s.new_var()).collect();
        for w in vs.windows(2) {
            s.add_clause([Lit::neg(w[0]), Lit::pos(w[1])]);
        }
        s.add_clause([Lit::pos(vs[0])]);
        assert!(s.solve().is_sat());
        for &v in &vs {
            assert_eq!(s.value(v), Some(true));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: var p_{i,j} = pigeon i in hole j.
        let mut s = Solver::new();
        let mut p = [[Var(0); 2]; 3];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var();
            }
        }
        for row in &p {
            s.add_clause([Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_5_into_4_unsat() {
        let n = 5;
        let m = 4;
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..n)
            .map(|_| (0..m).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn model_enumeration_with_blocking_clauses() {
        // x ∨ y has exactly 3 models.
        let mut s = Solver::new();
        let x = s.new_var();
        let y = s.new_var();
        s.add_clause([Lit::pos(x), Lit::pos(y)]);
        let mut models = Vec::new();
        while s.solve().is_sat() {
            let mx = s.value(x).unwrap();
            let my = s.value(y).unwrap();
            models.push((mx, my));
            s.add_clause([Lit::new(x, !mx), Lit::new(y, !my)]);
        }
        models.sort();
        assert_eq!(models, vec![(false, true), (true, false), (true, true)]);
    }

    #[test]
    fn assumptions_are_transient() {
        let mut s = Solver::new();
        let x = s.new_var();
        let y = s.new_var();
        s.add_clause([Lit::pos(x), Lit::pos(y)]);
        assert_eq!(
            s.solve_with_assumptions(&[Lit::neg(x), Lit::neg(y)]),
            SolveResult::Unsat
        );
        // The assumptions must not persist.
        assert!(s.solve().is_sat());
        assert!(s.solve_with_assumptions(&[Lit::neg(x)]).is_sat());
        assert_eq!(s.value(y), Some(true));
    }

    #[test]
    fn tautology_and_duplicate_literals() {
        let mut s = Solver::new();
        let x = s.new_var();
        let y = s.new_var();
        assert!(s.add_clause([Lit::pos(x), Lit::neg(x)])); // tautology dropped
        assert!(s.add_clause([Lit::pos(y), Lit::pos(y)])); // dedup to unit
        assert!(s.solve().is_sat());
        assert_eq!(s.value(y), Some(true));
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = Solver::new();
        let _ = s.new_var();
        assert!(!s.add_clause([]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn unsat_is_sticky_but_clause_add_reports_it() {
        let mut s = Solver::new();
        let x = s.new_var();
        s.add_clause([Lit::pos(x)]);
        s.add_clause([Lit::neg(x)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(!s.add_clause([Lit::pos(x)]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn at_most_one_chain() {
        // Exactly-one over 8 variables, 8 models.
        let mut s = Solver::new();
        let vs: Vec<Var> = (0..8).map(|_| s.new_var()).collect();
        s.add_clause(vs.iter().map(|&v| Lit::pos(v)));
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                s.add_clause([Lit::neg(vs[i]), Lit::neg(vs[j])]);
            }
        }
        let mut count = 0;
        while s.solve().is_sat() {
            count += 1;
            let block: Vec<Lit> = vs
                .iter()
                .map(|&v| Lit::new(v, !s.value(v).unwrap()))
                .collect();
            s.add_clause(block);
        }
        assert_eq!(count, 8);
    }

    #[test]
    fn graph_coloring_triangle() {
        // Triangle 2-colorable: UNSAT. Triangle 3-colorable: SAT.
        for (colors, expect_sat) in [(2usize, false), (3usize, true)] {
            let mut s = Solver::new();
            let v: Vec<Vec<Var>> = (0..3)
                .map(|_| (0..colors).map(|_| s.new_var()).collect())
                .collect();
            for node in &v {
                s.add_clause(node.iter().map(|&x| Lit::pos(x)));
            }
            for (a, b) in [(0, 1), (1, 2), (0, 2)] {
                for c in 0..colors {
                    s.add_clause([Lit::neg(v[a][c]), Lit::neg(v[b][c])]);
                }
            }
            assert_eq!(s.solve().is_sat(), expect_sat, "colors={colors}");
        }
    }

    #[test]
    fn solver_is_send() {
        // The parallel synthesis engine gives each worker thread a private
        // Solver; every field must stay Send (no Rc, no raw pointers).
        fn assert_send<T: Send>() {}
        assert_send::<Solver>();
        assert_send::<SolverStats>();
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::new();
        let mut vars = Vec::new();
        for i in 0..6 {
            let a = lit(&mut s, &mut vars, i, true);
            let b = lit(&mut s, &mut vars, (i + 1) % 6, false);
            s.add_clause([a, b]);
        }
        s.solve();
        assert!(s.stats().propagations > 0 || s.stats().decisions > 0);
    }

    /// Cross-check the CDCL solver against brute force on many small random
    /// formulas. This is the key correctness test for the solver.
    #[test]
    fn random_formulas_match_brute_force() {
        // Simple deterministic LCG so the test needs no external crates here.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for round in 0..300 {
            let n_vars = 3 + (next() % 6) as usize; // 3..8
            let n_clauses = 2 + (next() % 20) as usize;
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..n_clauses {
                let len = 1 + (next() % 3) as usize;
                let mut c = Vec::new();
                for _ in 0..len {
                    c.push(((next() as usize) % n_vars, next() % 2 == 0));
                }
                clauses.push(c);
            }
            // Brute force.
            let mut brute_sat = false;
            'outer: for m in 0..(1u32 << n_vars) {
                for c in &clauses {
                    if !c.iter().any(|&(v, pos)| ((m >> v) & 1 == 1) == pos) {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // CDCL.
            let mut s = Solver::new();
            let vs: Vec<Var> = (0..n_vars).map(|_| s.new_var()).collect();
            for c in &clauses {
                s.add_clause(c.iter().map(|&(v, pos)| Lit::new(vs[v], pos)));
            }
            let got = s.solve().is_sat();
            assert_eq!(got, brute_sat, "round {round}: clauses {clauses:?}");
            if got {
                // The model must actually satisfy every clause.
                for c in &clauses {
                    assert!(
                        c.iter().any(|&(v, pos)| s.value(vs[v]).unwrap() == pos),
                        "model does not satisfy {c:?}"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod shared_tests {
    use super::*;
    use crate::shared::CnfBuilder;

    /// A toy exchange endpoint: an unbounded in-memory pool with a read
    /// cursor, no filtering. The real bounded/filtered bus lives in
    /// `crates/portfolio`.
    #[derive(Default)]
    struct BufferExchange {
        pool: Vec<(Vec<Lit>, u32, bool)>,
        cursor: usize,
    }

    impl ClauseExchange for BufferExchange {
        fn export(&mut self, lits: &[Lit], lbd: u32, skeleton: bool) {
            self.pool.push((lits.to_vec(), lbd, skeleton));
        }
        fn fetch(&mut self, out: &mut Vec<(Vec<Lit>, u32, bool)>) {
            out.extend(self.pool[self.cursor..].iter().cloned());
            self.cursor = self.pool.len();
        }
    }

    fn exactly_one(n: usize) -> (std::sync::Arc<SharedCnf>, Vec<Var>) {
        let mut b = CnfBuilder::new();
        let vs: Vec<Var> = (0..n).map(|_| b.new_var()).collect();
        b.add_clause(vs.iter().map(|&v| Lit::pos(v)));
        for i in 0..n {
            for j in (i + 1)..n {
                b.add_clause([Lit::neg(vs[i]), Lit::neg(vs[j])]);
            }
        }
        (std::sync::Arc::new(b.build()), vs)
    }

    /// Enumerates all models over `vs` (blocking each found model), using
    /// `exchange` for clause traffic. Returns the sorted model set.
    fn enumerate(
        s: &mut Solver,
        vs: &[Var],
        assumptions: &[Lit],
        exchange: &mut dyn ClauseExchange,
    ) -> Vec<Vec<bool>> {
        let mut models = Vec::new();
        while s.solve_exchanging(assumptions, exchange).is_sat() {
            let m: Vec<bool> = vs.iter().map(|&v| s.value(v).unwrap()).collect();
            let block: Vec<Lit> = vs.iter().zip(&m).map(|(&v, &b)| Lit::new(v, !b)).collect();
            models.push(m);
            s.add_clause(block);
        }
        models.sort();
        models
    }

    #[test]
    fn attached_solver_matches_brute_force() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for round in 0..200 {
            let n_vars = 3 + (next() % 6) as usize;
            let n_clauses = 2 + (next() % 20) as usize;
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..n_clauses {
                let len = 1 + (next() % 3) as usize;
                let mut c = Vec::new();
                for _ in 0..len {
                    c.push(((next() as usize) % n_vars, next() % 2 == 0));
                }
                clauses.push(c);
            }
            let mut brute_sat = false;
            'outer: for m in 0..(1u32 << n_vars) {
                for c in &clauses {
                    if !c.iter().any(|&(v, pos)| ((m >> v) & 1 == 1) == pos) {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            let mut b = CnfBuilder::new();
            let vs: Vec<Var> = (0..n_vars).map(|_| b.new_var()).collect();
            for c in &clauses {
                b.add_clause(c.iter().map(|&(v, pos)| Lit::new(vs[v], pos)));
            }
            let mut s = Solver::attach_shared(std::sync::Arc::new(b.build()));
            let got = s.solve().is_sat();
            assert_eq!(got, brute_sat, "round {round}: clauses {clauses:?}");
            if got {
                for c in &clauses {
                    assert!(
                        c.iter().any(|&(v, pos)| s.value(vs[v]).unwrap() == pos),
                        "model does not satisfy {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn two_attached_solvers_enumerate_independently() {
        let (cnf, vs) = exactly_one(8);
        let mut a = Solver::attach_shared(cnf.clone());
        let mut bvr = Solver::attach_shared(cnf.clone());
        assert_eq!(a.num_clauses(), bvr.num_clauses());
        // Interleave the two enumerations: blocking clauses in one solver
        // must not leak into the other through the shared arena.
        let mut count_a = 0;
        let mut count_b = 0;
        loop {
            let sa = a.solve().is_sat();
            let sb = bvr.solve().is_sat();
            assert_eq!(sa, sb);
            if !sa {
                break;
            }
            count_a += 1;
            count_b += 1;
            for s in [&mut a, &mut bvr] {
                let block: Vec<Lit> = vs
                    .iter()
                    .map(|&v| Lit::new(v, !s.value(v).unwrap()))
                    .collect();
                s.add_clause(block);
            }
        }
        assert_eq!(count_a, 8);
        assert_eq!(count_b, 8);
    }

    /// The satellite unit test: blocking-clause enumeration counts are
    /// unchanged when clause import is enabled. This mirrors the portfolio
    /// setup exactly: two workers attached to one compiled formula, cubes
    /// pinned on an observed variable, and the peer's traffic — learnt
    /// clauses *and* its blocking clauses — imported mid-enumeration.
    #[test]
    fn enumeration_count_unchanged_with_clause_import() {
        let (cnf, vs) = exactly_one(8);
        let pin = Lit::pos(vs[0]);

        // Cube A (v0 = true): enumerate, exporting learnt clauses and its
        // blocking clauses into the pool.
        let mut bus = BufferExchange::default();
        let mut a = Solver::attach_shared(cnf.clone());
        let mut a_models = Vec::new();
        while a.solve_exchanging(&[pin], &mut bus).is_sat() {
            let m: Vec<bool> = vs.iter().map(|&v| a.value(v).unwrap()).collect();
            let block: Vec<Lit> = vs.iter().zip(&m).map(|(&v, &b)| Lit::new(v, !b)).collect();
            // Every model in the other cube differs on the pinned observed
            // variable, so A's blocking clauses are satisfied there — the
            // worst-case import traffic for cube B.
            bus.export(&block, block.len() as u32, false);
            a_models.push(m);
            a.add_clause(block);
        }
        assert_eq!(a_models.len(), 1);

        // Cube B (v0 = false) with imports vs. a clean reference run.
        let mut b = Solver::attach_shared(cnf.clone());
        let with_import = enumerate(&mut b, &vs, &[!pin], &mut bus);
        let mut b_ref = Solver::attach_shared(cnf);
        let without_import = enumerate(&mut b_ref, &vs, &[!pin], &mut NoExchange);
        assert_eq!(with_import.len(), 7);
        assert_eq!(with_import, without_import);
    }

    #[test]
    fn exchange_roundtrip_between_attached_solvers() {
        // An UNSAT core in the shared part: pigeonhole 4→3 plus extra vars.
        let mut bld = CnfBuilder::new();
        let p: Vec<Vec<Var>> = (0..4)
            .map(|_| (0..3).map(|_| bld.new_var()).collect())
            .collect();
        for row in &p {
            bld.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                for (&v1, &v2) in row1.iter().zip(row2) {
                    bld.add_clause([Lit::neg(v1), Lit::neg(v2)]);
                }
            }
        }
        let cnf = std::sync::Arc::new(bld.build());
        let mut bus = BufferExchange::default();
        let mut a = Solver::attach_shared(cnf.clone());
        assert_eq!(a.solve_exchanging(&[], &mut bus), SolveResult::Unsat);
        assert!(!bus.pool.is_empty(), "UNSAT proof should learn clauses");
        // A second solver importing A's clauses must agree.
        let mut b = Solver::attach_shared(cnf);
        assert_eq!(b.solve_exchanging(&[], &mut bus), SolveResult::Unsat);
    }

    #[test]
    fn solve_limited_respects_budget_and_warms_activity() {
        let mut bld = CnfBuilder::new();
        let n = 7;
        let m = 6;
        let p: Vec<Vec<Var>> = (0..n)
            .map(|_| (0..m).map(|_| bld.new_var()).collect())
            .collect();
        for row in &p {
            bld.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                for (&v1, &v2) in row1.iter().zip(row2) {
                    bld.add_clause([Lit::neg(v1), Lit::neg(v2)]);
                }
            }
        }
        let cnf = std::sync::Arc::new(bld.build());
        let mut s = Solver::attach_shared(cnf.clone());
        assert_eq!(s.solve_limited(&[], 3), None, "budget too small to finish");
        assert!(s.stats().conflicts >= 3);
        let warmed = p.iter().flatten().any(|&v| s.activity(v) > 0.0);
        assert!(warmed, "probing must leave VSIDS activity behind");
        // With an ample budget the limited solve is definitive.
        let mut s2 = Solver::attach_shared(cnf);
        assert_eq!(s2.solve_limited(&[], u64::MAX), Some(SolveResult::Unsat));
    }

    /// Pigeonhole 7→6: hard enough that an unbudgeted solve needs many
    /// restarts, so budget checks at restart boundaries actually fire.
    fn hard_pigeonhole() -> std::sync::Arc<SharedCnf> {
        let mut bld = CnfBuilder::new();
        let n = 7;
        let m = 6;
        let p: Vec<Vec<Var>> = (0..n)
            .map(|_| (0..m).map(|_| bld.new_var()).collect())
            .collect();
        for row in &p {
            bld.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                for (&v1, &v2) in row1.iter().zip(row2) {
                    bld.add_clause([Lit::neg(v1), Lit::neg(v2)]);
                }
            }
        }
        std::sync::Arc::new(bld.build())
    }

    #[test]
    fn conflict_budget_is_honored_exactly() {
        use crate::budget::{BudgetedResult, Interrupt, SolveBudget};
        let mut s = Solver::attach_shared(hard_pigeonhole());
        let r = s.solve_budgeted(&[], &mut NoExchange, &SolveBudget::conflicts(50));
        assert_eq!(r, BudgetedResult::Interrupted(Interrupt::Conflicts));
        // The conflict limit clamps each restart's budget, so it is exact.
        assert_eq!(s.stats().conflicts, 50);
        // The solver state stays warm: resuming with no limit finishes.
        let resumed = s.solve_budgeted(&[], &mut NoExchange, &SolveBudget::unlimited());
        assert_eq!(resumed, BudgetedResult::Done(SolveResult::Unsat));
    }

    #[test]
    fn deadline_stops_within_one_restart() {
        use crate::budget::{BudgetedResult, Interrupt, SolveBudget};
        let mut s = Solver::attach_shared(hard_pigeonhole());
        let budget = SolveBudget {
            deadline: Some(std::time::Instant::now()),
            ..SolveBudget::default()
        };
        let r = s.solve_budgeted(&[], &mut NoExchange, &budget);
        assert_eq!(r, BudgetedResult::Interrupted(Interrupt::Deadline));
        // An already-expired deadline trips at the first restart boundary,
        // before any search: zero conflicts spent.
        assert_eq!(s.stats().conflicts, 0);
    }

    #[test]
    fn cancel_token_interrupts_from_outside() {
        use crate::budget::{BudgetedResult, CancelToken, Interrupt, SolveBudget};
        let token = CancelToken::new();
        token.cancel();
        let mut s = Solver::attach_shared(hard_pigeonhole());
        let budget = SolveBudget {
            cancel: Some(token),
            ..SolveBudget::default()
        };
        let r = s.solve_budgeted(&[], &mut NoExchange, &budget);
        assert_eq!(r, BudgetedResult::Interrupted(Interrupt::Cancelled));
    }

    #[test]
    fn propagation_budget_interrupts() {
        use crate::budget::{BudgetedResult, Interrupt, SolveBudget};
        let mut s = Solver::attach_shared(hard_pigeonhole());
        let budget = SolveBudget {
            max_propagations: 1,
            ..SolveBudget::default()
        };
        let r = s.solve_budgeted(&[], &mut NoExchange, &budget);
        assert_eq!(r, BudgetedResult::Interrupted(Interrupt::Propagations));
    }

    #[test]
    fn injected_faults_fire_at_restart_coordinates() {
        use crate::budget::{BudgetedResult, Interrupt, SolveBudget};
        use crate::fault::{FaultCtx, FaultPlan};
        let cnf = hard_pigeonhole();
        let plan = std::sync::Arc::new(FaultPlan::parse("q@0@0@1@interrupt").expect("plan parses"));
        let ctx = FaultCtx {
            plan: plan.clone(),
            query: std::sync::Arc::from("q"),
            cube: 0,
            attempt: 0,
        };
        let budget = SolveBudget {
            fault: Some(ctx),
            ..SolveBudget::default()
        };
        let mut s = Solver::attach_shared(cnf.clone());
        let r = s.solve_budgeted(&[], &mut NoExchange, &budget);
        assert_eq!(r, BudgetedResult::Interrupted(Interrupt::Injected));
        // The site armed restart 1, so exactly one restart ran first.
        assert_eq!(s.stats().restarts, 1);
        assert_eq!(plan.injections(), 1);

        // A panic site actually panics (the pool's catch_unwind recovers).
        let panic_plan =
            std::sync::Arc::new(FaultPlan::parse("q@*@*@0@panic").expect("plan parses"));
        let panic_budget = SolveBudget {
            fault: Some(FaultCtx {
                plan: panic_plan,
                query: std::sync::Arc::from("q"),
                cube: 0,
                attempt: 0,
            }),
            ..SolveBudget::default()
        };
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut s = Solver::attach_shared(cnf);
            s.solve_budgeted(&[], &mut NoExchange, &panic_budget)
        }));
        assert!(caught.is_err(), "armed panic site must panic");
    }

    #[test]
    fn attach_propagates_shared_units() {
        let mut b = CnfBuilder::new();
        let x = b.new_var();
        let y = b.new_var();
        let z = b.new_var();
        b.add_clause([Lit::pos(x)]);
        b.add_clause([Lit::neg(x), Lit::pos(y)]);
        b.add_clause([Lit::neg(y), Lit::pos(z)]);
        let mut s = Solver::attach_shared(std::sync::Arc::new(b.build()));
        assert!(s.solve().is_sat());
        assert_eq!(s.value(x), Some(true));
        assert_eq!(s.value(y), Some(true));
        assert_eq!(s.value(z), Some(true));
    }

    #[test]
    fn attach_detects_contradictory_units() {
        let mut b = CnfBuilder::new();
        let x = b.new_var();
        b.add_clause([Lit::pos(x)]);
        b.add_clause([Lit::neg(x)]);
        let mut s = Solver::attach_shared(std::sync::Arc::new(b.build()));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    fn add_pigeonhole(bld: &mut CnfBuilder) {
        let p: Vec<Vec<Var>> = (0..4)
            .map(|_| (0..3).map(|_| bld.new_var()).collect())
            .collect();
        for row in &p {
            bld.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                for (&v1, &v2) in row1.iter().zip(row2) {
                    bld.add_clause([Lit::neg(v1), Lit::neg(v2)]);
                }
            }
        }
    }

    /// Provenance propagation: learnt clauses derived exclusively from
    /// skeleton-tagged shared clauses export as skeleton-pure, and the
    /// very same derivations export impure when the identical clauses sit
    /// in a non-skeleton layer.
    #[test]
    fn learnt_purity_follows_layer_provenance() {
        // Pigeonhole 4→3 is UNSAT, so the solver must learn clauses — and
        // every antecedent lives in the single tagged layer.
        for (skeleton, what) in [(true, "pure"), (false, "impure")] {
            let mut bld = CnfBuilder::new();
            add_pigeonhole(&mut bld);
            let cnf = std::sync::Arc::new(bld.build_tagged(skeleton));
            let mut bus = BufferExchange::default();
            let mut s = Solver::attach_shared(cnf);
            assert_eq!(s.solve_exchanging(&[], &mut bus), SolveResult::Unsat);
            assert!(!bus.pool.is_empty(), "UNSAT proof should learn clauses");
            assert!(
                bus.pool.iter().all(|(_, _, pure)| *pure == skeleton),
                "clauses derived only from a skeleton={skeleton} layer must export {what}"
            );
        }
    }

    /// Purity is preserved across layer chains: an axiom-style extension
    /// layer whose clauses never join a conflict leaves skeleton-derived
    /// learnt clauses pure.
    #[test]
    fn purity_survives_inert_extension_layers() {
        let mut bld = CnfBuilder::new();
        add_pigeonhole(&mut bld);
        let base = bld.build_tagged(true);
        let mut e = CnfBuilder::extending(&base);
        let w = e.new_var();
        let u = e.new_var();
        // Extension units fix fresh variables at level 0; they cannot be
        // antecedents of any conflict over the pigeonhole core.
        e.add_clause([Lit::pos(w)]);
        e.add_clause([Lit::neg(w), Lit::pos(u)]);
        let chain = std::sync::Arc::new(e.build());
        assert_eq!(chain.num_layers(), 2);
        let mut bus = BufferExchange::default();
        let mut s = Solver::attach_shared(chain);
        assert_eq!(s.solve_exchanging(&[], &mut bus), SolveResult::Unsat);
        assert!(!bus.pool.is_empty(), "UNSAT proof should learn clauses");
        assert!(
            bus.pool.iter().all(|(_, _, pure)| *pure),
            "skeleton-only derivations must stay pure under an inert axiom layer"
        );
    }

    #[test]
    fn local_vars_and_clauses_extend_an_attached_solver() {
        let (cnf, vs) = exactly_one(4);
        let mut s = Solver::attach_shared(cnf);
        // A local variable defined on top of shared ones: w ↔ v0 ∨ v1.
        let w = s.new_var();
        s.add_clause([Lit::neg(vs[0]), Lit::pos(w)]);
        s.add_clause([Lit::neg(vs[1]), Lit::pos(w)]);
        s.add_clause([Lit::pos(vs[0]), Lit::pos(vs[1]), Lit::neg(w)]);
        let mut with_w = 0;
        let mut total = 0;
        let all: Vec<Var> = vs.iter().copied().chain([w]).collect();
        while s.solve().is_sat() {
            total += 1;
            if s.value(w) == Some(true) {
                with_w += 1;
            }
            let block: Vec<Lit> = all
                .iter()
                .map(|&v| Lit::new(v, !s.value(v).unwrap()))
                .collect();
            s.add_clause(block);
        }
        assert_eq!(total, 4);
        assert_eq!(with_w, 2);
    }

    #[test]
    fn attach_arenas_with_units_and_empty_clauses() {
        // Units in the arena propagate at attach time on both paths.
        let mut b = CnfBuilder::new();
        let x = b.new_var();
        let y = b.new_var();
        b.add_clause([Lit::pos(x)]);
        b.add_clause([Lit::neg(x), Lit::pos(y)]);
        let cnf = std::sync::Arc::new(b.build());
        for mut s in [
            Solver::attach_shared(cnf.clone()),
            Solver::attach_shared_lazy(cnf.clone()),
        ] {
            assert!(s.solve().is_sat());
            assert_eq!(s.value(x), Some(true));
            assert_eq!(s.value(y), Some(true));
        }
        // An arena holding an empty clause attaches as already-unsat.
        let mut b = CnfBuilder::new();
        let z = b.new_var();
        b.add_clause([Lit::pos(z)]);
        b.add_clause([]);
        let cnf = std::sync::Arc::new(b.build());
        assert!(!cnf.is_ok());
        for mut s in [
            Solver::attach_shared(cnf.clone()),
            Solver::attach_shared_lazy(cnf),
        ] {
            assert_eq!(s.solve(), SolveResult::Unsat);
            assert!(!s.add_clause([Lit::pos(z)]), "an unsat attach stays unsat");
        }
    }

    #[test]
    fn fresh_attach_resets_shared_watch_positions() {
        // Pool-reuse shape: solver A enumerates against the arena (moving
        // its private watch positions), then a fresh solver attaches to
        // the same arena — its `shared_watch` must start at [0, 1] for
        // every clause, unaffected by A's searches.
        let (cnf, vs) = exactly_one(6);
        let mut a = Solver::attach_shared(cnf.clone());
        assert_eq!(enumerate(&mut a, &vs, &[], &mut NoExchange).len(), 6);
        assert!(
            a.shared_watch.iter().any(|&wp| wp != [0, 1]),
            "enumeration should have moved at least one watch position"
        );
        let mut fresh = Solver::attach_shared(cnf.clone());
        assert_eq!(fresh.shared_watch, vec![[0, 1]; cnf.num_clauses()]);
        assert_eq!(enumerate(&mut fresh, &vs, &[], &mut NoExchange).len(), 6);
        // Same contract on the lazy path: dormant clauses keep the reset
        // positions until activation installs real watchers.
        let fresh_lazy = Solver::attach_shared_lazy(cnf.clone());
        assert_eq!(fresh_lazy.shared_watch, vec![[0, 1]; cnf.num_clauses()]);
    }

    // ----- lazy definitional activation -----

    /// A three-layer chain: an exactly-one(4) skeleton, then two
    /// definitional cones — `g0 := v0 ∨ v2` and `g1 := g0 ∨ v3` (pure
    /// Tseitin namings; every clause mentions its layer's own gate).
    fn layered_chain() -> (std::sync::Arc<SharedCnf>, Vec<Var>, Var, Var) {
        let mut b = CnfBuilder::new();
        let vs: Vec<Var> = (0..4).map(|_| b.new_var()).collect();
        b.add_clause(vs.iter().map(|&v| Lit::pos(v)));
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_clause([Lit::neg(vs[i]), Lit::neg(vs[j])]);
            }
        }
        let base = b.build_tagged(true);
        let mut e1 = CnfBuilder::extending(&base);
        let g0 = e1.new_var();
        e1.add_clause([Lit::neg(g0), Lit::pos(vs[0]), Lit::pos(vs[2])]);
        e1.add_clause([Lit::pos(g0), Lit::neg(vs[0])]);
        e1.add_clause([Lit::pos(g0), Lit::neg(vs[2])]);
        let l1 = e1.build_layer(true, true);
        let mut e2 = CnfBuilder::extending(&l1);
        let g1 = e2.new_var();
        e2.add_clause([Lit::neg(g1), Lit::pos(g0), Lit::pos(vs[3])]);
        e2.add_clause([Lit::pos(g1), Lit::neg(g0)]);
        e2.add_clause([Lit::pos(g1), Lit::neg(vs[3])]);
        (std::sync::Arc::new(e2.build_layer(true, true)), vs, g0, g1)
    }

    #[test]
    fn lazy_attach_skips_dormant_cones_until_referenced() {
        let (cnf, vs, _g0, _g1) = layered_chain();
        let mut eager = Solver::attach_shared(cnf.clone());
        let mut lazy = Solver::attach_shared_lazy(cnf.clone());
        assert_eq!(eager.active_layer_count(), 3);
        assert_eq!(
            lazy.active_layer_count(),
            1,
            "definitional cones start dormant"
        );
        // A query that never touches the gates: identical model set over
        // the skeleton, and no activation from skeleton-only blocking.
        let me = enumerate(&mut eager, &vs, &[], &mut NoExchange);
        let ml = enumerate(&mut lazy, &vs, &[], &mut NoExchange);
        assert_eq!(me, ml);
        assert_eq!(ml.len(), 4);
        assert_eq!(lazy.active_layer_count(), 1);
        assert!(
            lazy.stats().propagations < eager.stats().propagations,
            "dormant cones must not be propagated: lazy {} vs eager {}",
            lazy.stats().propagations,
            eager.stats().propagations
        );
    }

    #[test]
    fn assumptions_wake_cones_transitively_and_match_eager() {
        let (cnf, vs, _g0, g1) = layered_chain();
        let mut eager = Solver::attach_shared(cnf.clone());
        let mut lazy = Solver::attach_shared_lazy(cnf.clone());
        let assume = [Lit::pos(g1)];
        let me = enumerate(&mut eager, &vs, &assume, &mut NoExchange);
        let ml = enumerate(&mut lazy, &vs, &assume, &mut NoExchange);
        assert_eq!(me, ml);
        assert_eq!(ml.len(), 3, "g1 = v0 ∨ v2 ∨ v3 under exactly-one");
        assert_eq!(
            lazy.active_layer_count(),
            3,
            "assuming g1 must wake its cone and, transitively, g0's"
        );
    }

    #[test]
    fn adding_a_clause_on_a_dormant_cone_activates_it() {
        let (cnf, vs, g0, _g1) = layered_chain();
        let mut lazy = Solver::attach_shared_lazy(cnf.clone());
        assert_eq!(lazy.active_layer_count(), 1);
        lazy.add_clause([Lit::pos(g0)]);
        assert_eq!(
            lazy.active_layer_count(),
            2,
            "asserting g0 wakes only its cone"
        );
        let ml = enumerate(&mut lazy, &vs, &[], &mut NoExchange);
        let mut eager = Solver::attach_shared(cnf);
        eager.add_clause([Lit::pos(g0)]);
        let me = enumerate(&mut eager, &vs, &[], &mut NoExchange);
        assert_eq!(me, ml);
        assert_eq!(ml.len(), 2, "g0 keeps exactly the v0 and v2 models");
    }

    #[test]
    fn imports_over_dormant_cones_are_shelved_not_activating() {
        let (cnf, vs, g0, g1) = layered_chain();
        let mut lazy = Solver::attach_shared_lazy(cnf.clone());
        let mut bus = BufferExchange::default();
        // Peer clauses over dormant gates: redundant for this query, so
        // parking them on the shelf must change nothing but effort.
        bus.pool.push((vec![Lit::pos(g0), Lit::pos(g1)], 2, true));
        bus.pool
            .push((vec![Lit::neg(g1), Lit::pos(vs[3]), Lit::pos(g0)], 3, true));
        let ml = enumerate(&mut lazy, &vs, &[], &mut bus);
        assert_eq!(lazy.active_layer_count(), 1, "imports must not wake cones");
        assert_eq!(lazy.shelved_count(), 2, "both imports wait on the shelf");
        assert_eq!(lazy.stats().shelved_replayed, 0);
        let mut eager = Solver::attach_shared(cnf.clone());
        let me = enumerate(&mut eager, &vs, &[], &mut NoExchange);
        assert_eq!(me, ml);
        // Ablation knob: with shelving off the imports are dropped outright
        // (the pre-fix behavior), still without waking any cone.
        let mut dropper = Solver::attach_shared_lazy(cnf);
        dropper.set_shelving(false);
        let mut bus2 = BufferExchange::default();
        bus2.pool.push((vec![Lit::pos(g0), Lit::pos(g1)], 2, true));
        let md = enumerate(&mut dropper, &vs, &[], &mut bus2);
        assert_eq!(md, me);
        assert_eq!(dropper.active_layer_count(), 1);
        assert_eq!(dropper.shelved_count(), 0, "shelving off means dropping");
    }

    #[test]
    fn shelved_import_replays_and_prunes_once_its_cone_activates() {
        // ¬g0 ∨ ¬v1 is implied (v1 excludes v0 and v2, and g0 = v0 ∨ v2)
        // but over the dormant gate g0 at import time. Shelved, it must be
        // installed by the activation that a later solve's assumptions
        // trigger — and then prune the contradictory assumption pair
        // {g0, v1} *directly*, with no conflict analysis at all.
        let (cnf, vs, g0, _g1) = layered_chain();
        let mut s = Solver::attach_shared_lazy(cnf.clone());
        let mut bus = BufferExchange::default();
        bus.pool
            .push((vec![Lit::neg(g0), Lit::neg(vs[1])], 2, true));
        assert!(s.solve_exchanging(&[], &mut bus).is_sat());
        assert_eq!(s.shelved_count(), 1, "import over dormant g0 is shelved");
        assert_eq!(s.active_layer_count(), 1);
        let before = s.stats();
        let r = s.solve_with_assumptions(&[Lit::pos(g0), Lit::pos(vs[1])]);
        assert_eq!(r, SolveResult::Unsat);
        let after = s.stats();
        assert_eq!(after.shelved_replayed, 1, "activation replayed the shelf");
        assert_eq!(s.shelved_count(), 0);
        assert_eq!(
            after.conflicts, before.conflicts,
            "the replayed import falsifies the second assumption outright"
        );
        // Control: with shelving off the import is gone, and refuting the
        // same assumption pair costs at least one analyzed conflict.
        let mut ctrl = Solver::attach_shared_lazy(cnf);
        ctrl.set_shelving(false);
        let mut bus2 = BufferExchange::default();
        bus2.pool
            .push((vec![Lit::neg(g0), Lit::neg(vs[1])], 2, true));
        assert!(ctrl.solve_exchanging(&[], &mut bus2).is_sat());
        let before = ctrl.stats();
        let r = ctrl.solve_with_assumptions(&[Lit::pos(g0), Lit::pos(vs[1])]);
        assert_eq!(r, SolveResult::Unsat);
        assert_eq!(ctrl.stats().shelved_replayed, 0);
        assert!(
            ctrl.stats().conflicts > before.conflicts,
            "without the import the refutation needs conflict analysis"
        );
    }

    #[test]
    fn shelved_import_replays_on_declare_roots() {
        let (cnf, vs, g0, _g1) = layered_chain();
        let mut s = Solver::attach_shared_lazy(cnf);
        let mut bus = BufferExchange::default();
        bus.pool
            .push((vec![Lit::neg(g0), Lit::neg(vs[1])], 2, true));
        assert!(s.solve_exchanging(&[], &mut bus).is_sat());
        assert_eq!(s.shelved_count(), 1);
        s.declare_roots([Lit::pos(g0)]);
        assert_eq!(s.stats().shelved_replayed, 1);
        assert_eq!(s.shelved_count(), 0);
        assert_eq!(s.active_layer_count(), 2, "only g0's cone woke");
    }

    #[test]
    fn decision_domain_branches_on_declared_cone_first() {
        let (cnf, vs, g0, _g1) = layered_chain();
        let mut eager = Solver::attach_shared(cnf.clone());
        let me = enumerate(&mut eager, &vs, &[Lit::pos(g0)], &mut NoExchange);
        let mut s = Solver::attach_shared_lazy(cnf.clone());
        s.set_domain_enabled(true);
        s.declare_roots([Lit::pos(g0)]);
        let md = enumerate(&mut s, &vs, &[Lit::pos(g0)], &mut NoExchange);
        assert_eq!(me, md, "the domain only reorders decisions");
        let st = s.stats();
        assert!(
            st.domain_decisions > 0,
            "decisions should be served from the declared cone"
        );
        assert!(st.domain_decisions <= st.decisions);
        // Default-off: a solver that never enables the domain reports 0.
        let mut plain = Solver::attach_shared_lazy(cnf);
        let _ = enumerate(&mut plain, &vs, &[Lit::pos(g0)], &mut NoExchange);
        assert_eq!(plain.stats().domain_decisions, 0);
    }

    #[test]
    fn decision_domain_falls_back_to_global_heap_when_cone_exhausted() {
        // Cone of g0 is {g0, v0, v2}; a full model still needs v1 and v3,
        // which only the global fallback can decide once the cone is
        // assigned. Deciding g0 false propagates ¬v0 and ¬v2, leaving
        // v1 ∨ v3 undetermined — so the SAT answer requires at least one
        // global (non-domain) decision.
        let (cnf, _vs, g0, _g1) = layered_chain();
        let mut s = Solver::attach_shared_lazy(cnf);
        s.set_domain_enabled(true);
        s.declare_roots([Lit::pos(g0)]);
        assert!(s.solve().is_sat());
        let st = s.stats();
        assert!(st.domain_decisions > 0, "local level used first");
        assert!(
            st.decisions > st.domain_decisions,
            "completing the model needs the global fallback"
        );
        // Disabling re-enables plain VSIDS: no further local decisions.
        s.set_domain_enabled(false);
        let before = s.stats().domain_decisions;
        assert!(s.solve().is_sat());
        assert_eq!(s.stats().domain_decisions, before);
    }

    // ----- level-0 inprocessing, tiered retention, arena GC -----

    #[test]
    fn simplify_purges_clauses_satisfied_at_level_zero() {
        let mut s = Solver::new();
        let x = s.new_var();
        let y = s.new_var();
        let z = s.new_var();
        s.add_clause([Lit::pos(x), Lit::pos(y)]);
        s.add_clause([Lit::pos(x), Lit::pos(z)]);
        assert_eq!(s.num_clauses(), 2);
        // The unit satisfies both clauses at level 0; the next solve's
        // inprocessing pass must purge them.
        s.add_clause([Lit::pos(x)]);
        assert!(s.solve().is_sat());
        assert!(s.stats().simplify_removed >= 2);
        assert_eq!(s.num_clauses(), 0);
        // The toggle restores the old keep-everything behavior.
        let mut off = Solver::new();
        off.set_inprocessing(false);
        let x = off.new_var();
        let y = off.new_var();
        off.add_clause([Lit::pos(x), Lit::pos(y)]);
        off.add_clause([Lit::pos(x)]);
        assert!(off.solve().is_sat());
        assert_eq!(off.stats().simplify_removed, 0);
        assert_eq!(off.num_clauses(), 1);
    }

    #[test]
    fn subsumption_deletes_and_strengthens_imported_learnts() {
        // Imports enter the database as learnts, so feeding crafted
        // clauses over an exchange exercises the subsumption pass
        // deterministically: (a ∨ b) subsumes (a ∨ b ∨ c) exactly, and
        // self-subsumes (¬a ∨ b ∨ d) down to (b ∨ d).
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        let d = s.new_var();
        let mut bus = BufferExchange::default();
        bus.pool.push((vec![Lit::pos(a), Lit::pos(b)], 2, false));
        bus.pool
            .push((vec![Lit::pos(a), Lit::pos(b), Lit::pos(c)], 3, false));
        bus.pool
            .push((vec![Lit::neg(a), Lit::pos(b), Lit::pos(d)], 3, false));
        assert!(s.solve_exchanging(&[], &mut bus).is_sat());
        let st = s.stats();
        assert!(st.subsumed >= 1, "exact subsumption must fire");
        assert!(st.strengthened >= 1, "self-subsuming resolution must fire");
    }

    #[test]
    fn tiered_retention_shrinks_pooled_solver_across_tasks() {
        // The pooled-solver shape: one long-lived solver, consecutive
        // hard queries. The size-triggered reduce must keep the live
        // learnt count near the LOCAL budget instead of growing without
        // bound, and the tier counters must stay consistent.
        let mut s = Solver::attach_shared(hard_pigeonhole());
        s.set_learnt_budget(20);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let st = s.stats();
        assert!(st.conflicts > 100, "pigeonhole 7→6 must be nontrivial");
        assert_eq!(
            st.learnts,
            st.learnts_core + st.learnts_mid + st.learnts_local,
            "tier counters must partition the live learnt set"
        );
        assert!(
            st.learnts < st.conflicts / 2,
            "retention must shed learnts: {} live of {} learned",
            st.learnts,
            st.conflicts
        );
    }

    #[test]
    fn arena_gc_fires_under_churn_and_preserves_results() {
        let mut s = Solver::attach_shared(hard_pigeonhole());
        s.set_learnt_budget(10);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let st = s.stats();
        assert!(st.gc_runs > 0, "churn at budget 10 must trigger arena GC");
        assert!(st.gc_reclaimed_words > 0);
    }

    #[test]
    fn toggles_preserve_enumerated_model_sets() {
        // The byte-identity bar, at solver scope: every combination of the
        // new toggles enumerates the identical model set, with and without
        // exchange traffic.
        let (cnf, vs) = exactly_one(8);
        let mut reference: Option<Vec<Vec<bool>>> = None;
        for inproc in [false, true] {
            for tiers in [false, true] {
                for lazy in [false, true] {
                    let mut s = if lazy {
                        Solver::attach_shared_lazy(cnf.clone())
                    } else {
                        Solver::attach_shared(cnf.clone())
                    };
                    s.set_inprocessing(inproc);
                    s.set_tiered_retention(tiers);
                    s.set_learnt_budget(4);
                    let mut bus = BufferExchange::default();
                    let models = enumerate(&mut s, &vs, &[], &mut bus);
                    assert_eq!(models.len(), 8);
                    match &reference {
                        None => reference = Some(models),
                        Some(r) => assert_eq!(
                            &models, r,
                            "inproc={inproc} tiers={tiers} lazy={lazy} diverged"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn imported_lbd_is_clamped_not_length() {
        // The satellite fix: an import's stored LBD is the sender's value
        // (clamped to [1, len]), not unconditionally the clause length.
        // Detect it through tier accounting: an LBD-2 import of length 4
        // must land in CORE, which length-based filing would put in MID.
        let mut s = Solver::new();
        let vs: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        let mut bus = BufferExchange::default();
        bus.pool
            .push((vs.iter().map(|&v| Lit::pos(v)).collect(), 2, false));
        assert!(s.solve_exchanging(&[], &mut bus).is_sat());
        let st = s.stats();
        assert_eq!(st.learnts_core, 1, "sender LBD 2 files the import as CORE");
        assert_eq!(st.learnts_mid + st.learnts_local, 0);
    }
}
