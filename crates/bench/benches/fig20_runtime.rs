//! Criterion bench for Figure 20b: SCC suite-generation runtime — between
//! TSO and Power, as the paper's streamlining story predicts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use litsynth_core::{synthesize_axiom, SynthConfig};
use litsynth_models::{MemoryModel, Scc};

fn bench(c: &mut Criterion) {
    let scc = Scc::new();
    let mut g = c.benchmark_group("fig20b_scc");
    g.sample_size(10);
    for n in [2usize, 3, 4] {
        for ax in scc.axioms() {
            g.bench_with_input(BenchmarkId::new(*ax, n), &n, |b, &n| {
                b.iter(|| synthesize_axiom(&scc, ax, &SynthConfig::new(n)));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
