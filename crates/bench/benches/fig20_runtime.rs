//! Bench for Figure 20b: SCC suite-generation runtime — between TSO and
//! Power, as the paper's streamlining story predicts.
//!
//! Uses the in-tree timing harness (`litsynth_bench::timing`) — the
//! workspace carries no external dependencies.

use litsynth_bench::timing::Group;
use litsynth_core::{synthesize_axiom, SynthConfig};
use litsynth_models::{MemoryModel, Scc};

fn main() {
    let scc = Scc::new();
    let mut g = Group::new("fig20b_scc", 10);
    for n in [2usize, 3, 4] {
        for ax in scc.axioms() {
            g.bench(format!("{ax}/{n}"), || {
                synthesize_axiom(&scc, ax, &SynthConfig::new(n))
            });
        }
    }
}
