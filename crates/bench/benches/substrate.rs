//! Microbenchmarks of the substrates: the CDCL solver, the circuit
//! compiler, the explicit oracle, and the canonicalizers. These support
//! the ablation discussion in EXPERIMENTS.md (hash vs exact
//! canonicalization, oracle vs SAT minimality).

#![allow(clippy::needless_range_loop)]

use criterion::{criterion_group, criterion_main, Criterion};
use litsynth_core::check_minimal;
use litsynth_litmus::suites::classics;
use litsynth_litmus::{canonical_key_exact, canonical_key_hash};
use litsynth_models::{oracle, Tso};
use litsynth_sat::{Lit, Solver, Var};

fn pigeonhole(n: usize) -> Solver {
    let m = n - 1;
    let mut s = Solver::new();
    let p: Vec<Vec<Var>> = (0..n).map(|_| (0..m).map(|_| s.new_var()).collect()).collect();
    for row in &p {
        s.add_clause(row.iter().map(|&v| Lit::pos(v)));
    }
    for j in 0..m {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
            }
        }
    }
    s
}

fn bench(c: &mut Criterion) {
    c.bench_function("sat/pigeonhole_7_into_6", |b| {
        b.iter(|| {
            let mut s = pigeonhole(7);
            assert!(!s.solve().is_sat());
        })
    });

    let (wrc, o) = classics::wrc();
    c.bench_function("oracle/wrc_forbidden_tso", |b| {
        b.iter(|| assert!(oracle::forbidden(&Tso::new(), &wrc, &o)))
    });
    c.bench_function("oracle/wrc_minimality_tso", |b| {
        b.iter(|| check_minimal(&Tso::new(), "causality", &wrc, &o))
    });

    c.bench_function("canon/exact_wrc", |b| {
        b.iter(|| canonical_key_exact(&wrc, &o))
    });
    c.bench_function("canon/hash_wrc", |b| {
        b.iter(|| canonical_key_hash(&wrc, &o))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
