//! Microbenchmarks of the substrates: the CDCL solver, the circuit
//! compiler, the explicit oracle, and the canonicalizers. These support
//! the ablation discussion in EXPERIMENTS.md (hash vs exact
//! canonicalization, oracle vs SAT minimality).
//!
//! Uses the in-tree timing harness (`litsynth_bench::timing`) — the
//! workspace carries no external dependencies.

#![allow(clippy::needless_range_loop)]

use litsynth_bench::timing::Group;
use litsynth_core::check_minimal;
use litsynth_litmus::suites::classics;
use litsynth_litmus::{canonical_key_exact, canonical_key_hash};
use litsynth_models::{oracle, Tso};
use litsynth_sat::{Lit, Solver, Var};

fn pigeonhole(n: usize) -> Solver {
    let m = n - 1;
    let mut s = Solver::new();
    let p: Vec<Vec<Var>> = (0..n)
        .map(|_| (0..m).map(|_| s.new_var()).collect())
        .collect();
    for row in &p {
        s.add_clause(row.iter().map(|&v| Lit::pos(v)));
    }
    for j in 0..m {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
            }
        }
    }
    s
}

fn main() {
    let mut g = Group::new("substrate", 20);
    g.bench("sat/pigeonhole_7_into_6", || {
        let mut s = pigeonhole(7);
        assert!(!s.solve().is_sat());
    });

    let (wrc, o) = classics::wrc();
    g.bench("oracle/wrc_forbidden_tso", || {
        assert!(oracle::forbidden(&Tso::new(), &wrc, &o))
    });
    g.bench("oracle/wrc_minimality_tso", || {
        check_minimal(&Tso::new(), "causality", &wrc, &o)
    });

    g.bench("canon/exact_wrc", || canonical_key_exact(&wrc, &o));
    g.bench("canon/hash_wrc", || canonical_key_hash(&wrc, &o));
}
