//! Bench for Figure 13c: TSO suite-generation runtime per axiom and
//! bound. Absolute numbers differ from the paper's server farm; the
//! super-exponential growth with the bound is the reproduced shape.
//!
//! Uses the in-tree timing harness (`litsynth_bench::timing`) — the
//! workspace carries no external dependencies.

use litsynth_bench::timing::Group;
use litsynth_core::{synthesize_axiom, synthesize_union, SynthConfig};
use litsynth_models::{MemoryModel, Tso};

fn main() {
    let tso = Tso::new();
    let mut g = Group::new("fig13c_tso", 10);
    for n in [2usize, 3, 4] {
        for ax in tso.axioms() {
            g.bench(format!("{ax}/{n}"), || {
                synthesize_axiom(&tso, ax, &SynthConfig::new(n))
            });
        }
    }

    // The parallel engine on the full union query: one worker vs all
    // cores, with and without cube splitting.
    let mut g = Group::new("fig13c_tso_union_parallel", 5);
    for n in [3usize, 4] {
        for (label, threads, cube_bits) in [("seq", 1, 0), ("par", 0, 0), ("par+cubes", 0, 2)] {
            let mut cfg = SynthConfig::new(n);
            cfg.threads = threads;
            cfg.cube_bits = cube_bits;
            g.bench(format!("union/{n}/{label}"), || {
                synthesize_union(&tso, &cfg)
            });
        }
    }
}
