//! Criterion bench for Figure 13c: TSO suite-generation runtime per axiom
//! and bound. Absolute numbers differ from the paper's server farm; the
//! super-exponential growth with the bound is the reproduced shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use litsynth_core::{synthesize_axiom, SynthConfig};
use litsynth_models::{MemoryModel, Tso};

fn bench(c: &mut Criterion) {
    let tso = Tso::new();
    let mut g = c.benchmark_group("fig13c_tso");
    g.sample_size(10);
    for n in [2usize, 3, 4] {
        for ax in tso.axioms() {
            g.bench_with_input(BenchmarkId::new(*ax, n), &n, |b, &n| {
                b.iter(|| synthesize_axiom(&tso, ax, &SynthConfig::new(n)));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
