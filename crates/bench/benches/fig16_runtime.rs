//! Bench for Figure 16c: Power suite-generation runtime — note the much
//! larger constant factor than TSO (the ppo fixpoint, §6.2).
//!
//! Uses the in-tree timing harness (`litsynth_bench::timing`) — the
//! workspace carries no external dependencies.

use litsynth_bench::timing::Group;
use litsynth_core::{synthesize_axiom, SynthConfig};
use litsynth_models::{MemoryModel, Power};

fn main() {
    let power = Power::new();
    let mut g = Group::new("fig16c_power", 10);
    for n in [2usize, 3, 4] {
        for ax in power.axioms() {
            g.bench(format!("{ax}/{n}"), || {
                synthesize_axiom(&power, ax, &SynthConfig::new(n))
            });
        }
    }
}
