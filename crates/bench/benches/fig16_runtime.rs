//! Criterion bench for Figure 16c: Power suite-generation runtime — note
//! the much larger constant factor than TSO (the ppo fixpoint, §6.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use litsynth_core::{synthesize_axiom, SynthConfig};
use litsynth_models::{MemoryModel, Power};

fn bench(c: &mut Criterion) {
    let power = Power::new();
    let mut g = c.benchmark_group("fig16c_power");
    g.sample_size(10);
    for n in [2usize, 3, 4] {
        for ax in power.axioms() {
            g.bench_with_input(BenchmarkId::new(*ax, n), &n, |b, &n| {
                b.iter(|| synthesize_axiom(&power, ax, &SynthConfig::new(n)));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
