//! Process-level resilience tests for the `experiments` binary: checkpoint
//! journaling survives a hard kill (byte-identical suites on resume), and
//! injected faults surface as retried or degraded work instead of crashes.
//!
//! These complement the in-process tests in `litsynth-core::synth` (journal
//! replay, retry ladders) and `litsynth-sat` (budget interrupts): here the
//! whole binary is killed and restarted, so the atomic-write and
//! journal-recovery paths are exercised across real process boundaries.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn exe() -> &'static str {
    env!("CARGO_BIN_EXE_experiments")
}

/// A fresh scratch directory for one test (removed on entry, not exit, so
/// failures leave evidence behind).
fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("litsynth-resilience-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs `experiments` to completion in `cwd` with a scrubbed environment
/// (no fault plan or resume flag leaks in from the outer test run).
fn run_experiments(args: &[&str], cwd: &Path, envs: &[(&str, &str)]) -> std::process::Output {
    let mut cmd = Command::new(exe());
    cmd.args(args)
        .current_dir(cwd)
        .env_remove("LITSYNTH_FAULT_PLAN")
        .env_remove("LITSYNTH_RESUME")
        .env_remove("LITSYNTH_JOURNAL")
        .env_remove("LITSYNTH_THREADS")
        .env_remove("LITSYNTH_CUBE_BITS");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn experiments")
}

/// Every `.litmus` file under `cwd/suites_out/<model>/`, as
/// name → exact bytes.
fn suite_bytes(cwd: &Path, model: &str) -> BTreeMap<String, Vec<u8>> {
    let dir = cwd.join("suites_out").join(model);
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(&dir).expect("read suite dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".litmus") {
            out.insert(name, std::fs::read(entry.path()).expect("read suite file"));
        }
    }
    out
}

fn journal_entries(cwd: &Path) -> usize {
    let dir = cwd.join("suites_out").join("journal");
    match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".journal"))
            .count(),
        Err(_) => 0,
    }
}

#[test]
fn killed_emit_resumes_to_byte_identical_suites() {
    // Reference: a clean, journal-free run.
    let clean = scratch("emit-clean");
    let out = run_experiments(&["emit", "tso", "3"], &clean, &[]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let reference = suite_bytes(&clean, "tso");
    assert!(!reference.is_empty());
    assert_eq!(journal_entries(&clean), 0, "no journal without --resume");
    // Atomic writes leave no temp litter.
    let litter: Vec<_> = std::fs::read_dir(clean.join("suites_out").join("tso"))
        .expect("read suite dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
        .collect();
    assert!(litter.is_empty(), "{litter:?}");

    // Victim: start the same emit with --resume, kill it as soon as the
    // first query checkpoints (or let it finish, if it wins the race —
    // resume must be byte-identical either way).
    let victim = scratch("emit-killed");
    let mut child = Command::new(exe())
        .args(["emit", "tso", "3", "--resume"])
        .current_dir(&victim)
        .env_remove("LITSYNTH_FAULT_PLAN")
        .env_remove("LITSYNTH_THREADS")
        .env_remove("LITSYNTH_CUBE_BITS")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim");
    let deadline = Instant::now() + Duration::from_secs(300);
    let mut killed = false;
    loop {
        if child.try_wait().expect("poll victim").is_some() {
            break;
        }
        if journal_entries(&victim) > 0 {
            child.kill().expect("kill victim");
            let _ = child.wait();
            killed = true;
            break;
        }
        assert!(
            Instant::now() < deadline,
            "victim neither journaled nor exited"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Resume to completion: recorded queries are replayed, the rest are
    // re-synthesized, and the final suite is byte-for-byte the reference.
    let out = run_experiments(&["emit", "tso", "3"], &victim, &[("LITSYNTH_RESUME", "1")]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        suite_bytes(&victim, "tso"),
        reference,
        "resumed suite diverged from the clean run (killed mid-run: {killed})"
    );
    // Every (axiom, bound) query of the 2..=3 emit is now journaled:
    // 3 TSO axioms × 2 bounds.
    assert_eq!(journal_entries(&victim), 6);

    // A third run replays everything from the journal — still identical.
    let out = run_experiments(&["emit", "tso", "3", "--resume"], &victim, &[]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(suite_bytes(&victim, "tso"), reference);

    let _ = std::fs::remove_dir_all(&clean);
    let _ = std::fs::remove_dir_all(&victim);
}

/// Extracts `(retried attempts, degraded workers, injected faults)` from
/// the `resilience:` line `experiments speedup` prints.
fn resilience_counters(stdout: &str) -> (u64, u64, u64) {
    let line = stdout
        .lines()
        .find(|l| l.starts_with("resilience:"))
        .unwrap_or_else(|| panic!("no resilience line in:\n{stdout}"));
    let nums: Vec<u64> = line
        .split_whitespace()
        .filter_map(|w| w.parse().ok())
        .collect();
    assert_eq!(nums.len(), 3, "unexpected resilience line: {line}");
    (nums[0], nums[1], nums[2])
}

#[test]
fn injected_panic_is_retried_across_the_process_boundary() {
    // Panic every cube's first attempt of the sc_per_loc query: all work
    // is retried, nothing degrades, and the binary's own byte-identity
    // assertion (seq vs portfolio) still holds.
    let dir = scratch("speedup-panic");
    let out = run_experiments(
        &["speedup", "2", "2"],
        &dir,
        &[("LITSYNTH_FAULT_PLAN", "tso/sc_per_loc/2@*@0@0@panic")],
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let (retries, degraded, injections) = resilience_counters(&stdout);
    assert!(retries > 0, "panicked attempts must be retried:\n{stdout}");
    assert_eq!(degraded, 0, "recovered faults must not degrade:\n{stdout}");
    assert!(injections > 0, "the plan must actually fire:\n{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persistent_interrupts_degrade_without_crashing() {
    // Interrupt every attempt of sc_per_loc: the query ends degraded (its
    // partial enumeration), the other queries are untouched, and the run
    // still completes with matching seq/portfolio suites.
    let dir = scratch("speedup-degraded");
    let out = run_experiments(
        &["speedup", "2", "2"],
        &dir,
        &[("LITSYNTH_FAULT_PLAN", "tso/sc_per_loc/2@*@*@*@interrupt")],
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let (_, degraded, injections) = resilience_counters(&stdout);
    assert!(degraded > 0, "persistent faults must surface:\n{stdout}");
    assert!(injections > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_free_run_reports_zero_degraded_workers() {
    // The CI gate: without a fault plan there must be zero degraded
    // workers (the binary also asserts this itself).
    let dir = scratch("speedup-clean");
    let out = run_experiments(&["speedup", "2", "2"], &dir, &[]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let (retries, degraded, injections) = resilience_counters(&stdout);
    assert_eq!((retries, degraded, injections), (0, 0, 0), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}
