//! # litsynth-bench
//!
//! The evaluation harness's shared plumbing: baselines and report helpers
//! used by the `experiments` binary and the Criterion benches.

pub mod baselines;
pub mod report;
