//! # litsynth-bench
//!
//! The evaluation harness's shared plumbing: baselines, report helpers,
//! and the in-tree timing harness used by the `experiments` binary and the
//! benches.

pub mod baselines;
pub mod report;
pub mod timing;
