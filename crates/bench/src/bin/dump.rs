//! Developer tool: print every synthesized test for a model at a bound.
//!
//! Usage: `dump <sc|tso|power|scc|c11> <events> [axiom]`.

use litsynth_core::{synthesize_axiom, SynthConfig};
use litsynth_models::{MemoryModel, Power, Sc, Scc, Tso, C11};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let model = args.get(1).map(String::as_str).unwrap_or("tso");
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let axiom = args.get(3).cloned();
    macro_rules! run {
        ($m:expr) => {{
            let m = $m;
            let mut cfg = SynthConfig::new(n);
            cfg.time_budget_ms = 120_000;
            for ax in m.axioms() {
                if let Some(ref a) = axiom {
                    if a != ax {
                        continue;
                    }
                }
                let r = synthesize_axiom(&m, ax, &cfg);
                println!("== {} n={} {}: {} tests", m.name(), n, ax, r.len());
                for (t, o) in r.tests.values() {
                    println!("{t}  outcome: {}", o.display(t));
                }
            }
        }};
    }
    match model {
        "tso" => run!(Tso::new()),
        "sc" => run!(Sc::new()),
        "power" => run!(Power::new()),
        "scc" => run!(Scc::new()),
        "c11" => run!(C11::new()),
        _ => eprintln!("unknown model"),
    }
}
