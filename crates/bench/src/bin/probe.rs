//! Developer tool: time one synthesis query per axiom at a given bound.
//!
//! Usage: `probe <tso|power|scc> <events> [budget_ms]`.

use litsynth_core::{synthesize_axiom, SynthConfig};
use litsynth_models::{MemoryModel, Power, Scc, Tso};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let model = args.get(1).map(String::as_str).unwrap_or("tso");
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let budget: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(60_000);
    let mut cfg = SynthConfig::new(n);
    cfg.time_budget_ms = budget;
    macro_rules! run {
        ($m:expr) => {{
            let m = $m;
            for ax in m.axioms() {
                let r = synthesize_axiom(&m, ax, &cfg);
                println!(
                    "{} n={} axiom={}: {} tests ({} raw) in {:.2}s trunc={} cnf={}v/{}c",
                    m.name(),
                    n,
                    ax,
                    r.len(),
                    r.raw_instances,
                    r.elapsed.as_secs_f64(),
                    r.truncated,
                    r.cnf_vars,
                    r.cnf_clauses
                );
            }
        }};
    }
    match model {
        "tso" => run!(Tso::new()),
        "power" => run!(Power::new()),
        "scc" => run!(Scc::new()),
        _ => eprintln!("unknown model"),
    }
}
