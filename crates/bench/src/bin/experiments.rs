//! The evaluation harness: regenerates every table and figure of the
//! paper's evaluation (see DESIGN.md §6 for the experiment index).
//!
//! Usage: `experiments <id> [budget_ms_per_query]` where `<id>` is one of
//! `table2 table4 fig11 fig12 fig13 fig14 fig16 fig20 c11 scc_wa soundness
//! speedup all`, `experiments emit <model> <max_bound> [budget_ms]` to
//! write the synthesized union suite to `suites_out/<model>/` in the
//! textual litmus format, or `experiments serve [max_bound] [clients]` to
//! benchmark a loopback `litsynth-serve` server (cold/warm latency, cache
//! hit rate, shard counters — written to `BENCH_synth.json`). Suite files are written atomically
//! (temp + rename), so a killed `emit` never leaves a half-written test.
//!
//! `experiments oracle` is the consistency-oracle acceptance run: the
//! saturation checker against the enumeration oracle on a factorial
//! stress row and across every reference-suite verdict, plus a loopback
//! `CHECK` serving benchmark (speedup, agreement counts, and qps go to
//! `BENCH_synth.json` for CI's oracle-smoke).
//!
//! `experiments remote [max_bound]` exercises the multi-host tier over
//! loopback: a no-fault leg (coordinator + 2 workers, everything remote,
//! zero degradation) and a kill leg (one worker dies mid-unit; its lease
//! is reclaimed and the unit re-run), asserting byte identity against
//! the direct sweep in both and writing the counters to
//! `BENCH_synth.json` (CI's remote-smoke greps them). Workers run as
//! real `litsynth-serve worker` processes when the sibling binary is
//! built, in-process threads otherwise.
//!
//! Passing `--resume` (any position) turns on the checkpoint journal:
//! every completed (axiom, bound) query is recorded under
//! `suites_out/journal/`, and a re-run skips the recorded queries,
//! reproducing byte-identical suites after a crash or kill at any point.
//!
//! The parallel synthesis engine is controlled by environment variables
//! picked up by every experiment:
//!
//! * `LITSYNTH_THREADS` — worker threads per query (`0` = all cores;
//!   default `1`, fully sequential).
//! * `LITSYNTH_CUBE_BITS` — split each query into `2^bits` cubes
//!   (default `0`, unsplit).
//! * `LITSYNTH_SHARD_THREADS` — `experiments all` shards the whole
//!   experiment list (≈ one shard per model/figure) over the same
//!   deterministic worker pool the synthesis engine uses (`0` = all
//!   cores, the default). Each experiment renders into its own buffer
//!   and the buffers are printed in the fixed experiment order, so
//!   sharding never interleaves or reorders output (only the wall-clock
//!   columns vary, as they do run to run anyway).
//! * `LITSYNTH_RESUME` / `LITSYNTH_JOURNAL` — what `--resume` sets:
//!   truthy `LITSYNTH_RESUME` enables the journal, `LITSYNTH_JOURNAL`
//!   overrides its directory (default `suites_out/journal`).
//! * `LITSYNTH_FAULT_PLAN` — deterministic fault injection for the
//!   resilience harness: a `;`-separated list of
//!   `query@cube@attempt@restart@action` sites (`*` wildcards; actions
//!   `panic`, `interrupt`, `slow:<ms>`), e.g.
//!   `tso/sc_per_loc/4@0@0@2@panic`. Injected faults exercise the
//!   retry/degrade ladder; `experiments speedup` reports the counters.
//!
//! `experiments speedup` runs the TSO bound sweep six ways — a
//! per-query-recompile baseline, the eager incremental control, the lazy
//! incremental engine, its `lazy-noshelve`/`lazy-nodomain` ablations, and
//! the full portfolio — asserting all six suites are byte-identical and
//! auditing the perf invariants: exactly one full circuit→CNF compilation
//! per incremental sweep, nonzero reuse counters, lazy strictly cutting
//! propagations vs. eager at bounds 3–5 (diffed against the committed
//! `BENCH_baseline.json` with a tolerance), and — on a fault-free run —
//! zero degraded workers. Results are also written to `BENCH_synth.json`
//! for machine consumption (CI's perf-smoke).

use litsynth_bench::baselines::DiyBaseline;
use litsynth_bench::report;
use litsynth_core::{
    check_minimal, count_programs, covering_subtests, minimal_for_some_axiom, synthesize_axiom,
    SynthConfig,
};
use litsynth_litmus::canonical_key_exact;
use litsynth_litmus::suites::{cambridge, owens};
use litsynth_models::{oracle, MemoryModel, Power, RelaxKind, Sc, Scc, Tso, C11};
use litsynth_portfolio::{resolve_threads, run_ordered};
use std::collections::BTreeMap;

/// `writeln!` into an experiment's output buffer, ignoring the (infallible
/// for `String`) result.
macro_rules! outln {
    ($out:expr) => {{
        use std::fmt::Write as _;
        let _ = writeln!($out);
    }};
    ($out:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        let _ = writeln!($out, $($arg)*);
    }};
}

/// One shardable experiment: a stable name and a renderer that writes the
/// full report into `out` given the per-query time budget.
type Experiment = (&'static str, fn(&mut String, u64));

/// Every experiment `all` runs, in the order their output is printed.
/// Sharding granularity is the experiment, which is per-model for the
/// result figures (fig13/fig16/fig20/c11 are the TSO/Power/SCC/C11 runs).
fn experiments() -> Vec<Experiment> {
    vec![
        ("table2", |out, _| table2(out)),
        ("table4", table4),
        ("fig11", fig11),
        ("fig12", fig12),
        ("fig13", fig13),
        ("fig14", fig14),
        ("fig16", fig16),
        ("fig20", fig20),
        ("c11", c11),
        ("scc_wa", scc_wa),
        ("soundness", soundness),
        ("orphan", orphan),
        ("armv7", armv7),
    ]
}

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    // `--resume` is positional-argument-agnostic sugar for
    // LITSYNTH_RESUME=1: the journal is picked up through the environment
    // so that every config constructed anywhere (including inside sharded
    // experiment closures) sees it.
    if let Some(pos) = args.iter().position(|a| a == "--resume") {
        args.remove(pos);
        std::env::set_var("LITSYNTH_RESUME", "1");
    }
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    let budget: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(120_000);
    match which {
        "speedup" => speedup(
            args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4),
            args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0),
        ),
        "emit" => emit(
            args.get(2).map(String::as_str).unwrap_or("tso"),
            args.get(3).and_then(|s| s.parse().ok()).unwrap_or(5),
            args.get(4).and_then(|s| s.parse().ok()).unwrap_or(120_000),
        ),
        "serve" => serve(
            args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3),
            args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4),
        ),
        "remote" => remote(args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3)),
        "oracle" => oracle(),
        "all" => all(budget),
        other => match experiments().into_iter().find(|(name, _)| *name == other) {
            Some((_, run)) => {
                let mut out = String::new();
                run(&mut out, budget);
                print!("{out}");
            }
            None => eprintln!("unknown experiment {other:?}"),
        },
    }
}

/// Shards the experiment list over the portfolio worker pool and prints
/// the buffers in experiment order, whatever the shard count.
fn all(budget: u64) {
    let shards = resolve_threads(env_usize("LITSYNTH_SHARD_THREADS", 0));
    let exps = experiments();
    let outputs = run_ordered(&exps, shards, |_, (_, run)| {
        let mut out = String::new();
        run(&mut out, budget);
        out
    });
    for out in outputs {
        print!("{out}");
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn cfg(n: usize, budget: u64) -> SynthConfig {
    let mut c = SynthConfig::new(n);
    c.time_budget_ms = budget;
    c.threads = env_usize("LITSYNTH_THREADS", 1);
    c.cube_bits = env_usize("LITSYNTH_CUBE_BITS", 0);
    c.journal = litsynth_core::env_journal();
    c
}

/// One phase of the `speedup` experiment: a full `2..=bound` sweep plus
/// the sweep's statistics and wall-clock.
struct Phase {
    name: &'static str,
    union: litsynth_core::CanonicalSuite,
    stats: litsynth_core::SweepStats,
    wall: std::time::Duration,
}

/// Serializes a suite for byte-for-byte comparison across phases.
fn suite_digest(union: &litsynth_core::CanonicalSuite) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for (k, (t, o)) in union {
        let _ = writeln!(s, "{k}|{}", litsynth_litmus::serialize(t, o));
    }
    s
}

/// One phase's JSON object for `BENCH_synth.json` (hand-rolled — the tree
/// has no JSON dependency; every value is a number, so no escaping).
fn phase_json(p: &Phase) -> String {
    let s = &p.stats;
    format!(
        "{{\"wall_s\": {:.6}, \"compilations\": {}, \"extensions\": {}, \
         \"reused_clauses\": {}, \"vault_published\": {}, \"vault_imported\": {}, \
         \"vault_filtered\": {}, \"raw_instances\": {}, \"exchange_exported\": {}, \
         \"exchange_imported\": {}, \"propagations\": {}, \"decisions\": {}, \
         \"domain_decisions\": {}, \"shelved_replayed\": {}, \
         \"simplify_removed\": {}, \"subsumed\": {}, \"strengthened\": {}, \
         \"gc_runs\": {}, \"gc_reclaimed_words\": {}, \
         \"retries\": {}, \"degraded\": {}}}",
        p.wall.as_secs_f64(),
        s.compilations,
        s.extensions,
        s.reused_clauses,
        s.vault.published,
        s.vault.imported,
        s.vault.filtered,
        s.raw_instances,
        s.exchange.0,
        s.exchange.1,
        s.propagations,
        s.decisions,
        s.domain_decisions,
        s.shelved_replayed,
        s.simplify_removed,
        s.subsumed,
        s.strengthened,
        s.gc_runs,
        s.gc_reclaimed_words,
        s.retries,
        s.degraded,
    )
}

/// Extracts the `f64` following `"key":` from hand-rolled JSON (no JSON
/// dependency in the tree; keys are unique and values are plain numbers).
fn json_f64(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The perf acceptance experiment: the TSO union over bounds `2..=bound`,
/// seven ways —
///
/// 1. **baseline** — monolithic per-query compilation, vault off, 1 thread
///    (every query re-runs the Tseitin transform from scratch);
/// 2. **eager** — layered sweep compilation plus the cross-query clause
///    vault, 1 thread, with every definitional layer watcher-attached up
///    front (PR 4's behavior — the propagation-tax control);
/// 3. **incremental** — the same, but with lazy definitional propagation
///    and both of its fixes on: shelve-and-replay of dormant-cone imports
///    and the two-level decision domain (still 1 thread);
/// 4. **lazy-noshelve** — incremental with shelving ablated (dormant-cone
///    imports dropped, the PR 5 behavior);
/// 5. **lazy-nodomain** — incremental with the decision domain ablated
///    (global VSIDS only, the PR 5 behavior);
/// 6. **legacy-db** — incremental with the modernized SAT core ablated:
///    level-0 inprocessing off and single-activity learnt retention
///    instead of LBD tiers (the pre-modernization solver on the same
///    engine configuration);
/// 7. **portfolio** — the full engine at `threads` threads with cube
///    splitting.
///
/// All seven suites must be byte-identical; the incremental phases must
/// compile in full exactly once per sweep and show nonzero reuse counters;
/// lazy (with its fixes) must strictly reduce propagations vs. eager at
/// bounds 3–5, and the modernized SAT core must strictly reduce
/// propagations vs. legacy-db at bounds 3–5 (at other bounds the
/// reductions are only reported — see the calibration notes at the
/// assertions); both reductions are diffed against the committed
/// `BENCH_baseline.json` with a tolerance. Results also go to
/// `BENCH_synth.json` (written atomically).
fn speedup(bound: usize, threads: usize) {
    let threads = resolve_threads(threads);
    let cube_bits = env_usize("LITSYNTH_CUBE_BITS", 2);
    println!(
        "\n## Incremental + parallel speedup — TSO union, bounds 2..={bound}, {threads} threads\n"
    );
    let tso = Tso::new();

    struct Knobs {
        incremental: bool,
        vault: bool,
        lazy: bool,
        shelve: bool,
        domain: bool,
        inprocess: bool,
        tiered: bool,
        threads: usize,
        cube_bits: usize,
    }
    let run = |name, k: Knobs| {
        let t0 = std::time::Instant::now();
        let (union, stats) =
            litsynth_core::synthesize_union_up_to_with_stats(&tso, 2..=bound, |n| {
                let mut c = SynthConfig::new(n);
                c.threads = k.threads;
                c.cube_bits = k.cube_bits;
                c.incremental = k.incremental;
                c.vault = k.vault;
                c.lazy = k.lazy;
                c.shelve = k.shelve;
                c.domain = k.domain;
                c.inprocess = k.inprocess;
                c.tiered = k.tiered;
                c.journal = litsynth_core::env_journal();
                c
            });
        Phase {
            name,
            union,
            stats,
            wall: t0.elapsed(),
        }
    };
    let modern = |incremental, vault, lazy, shelve, domain, threads, cube_bits| Knobs {
        incremental,
        vault,
        lazy,
        shelve,
        domain,
        inprocess: true,
        tiered: true,
        threads,
        cube_bits,
    };
    let baseline = run("baseline", modern(false, false, false, true, false, 1, 0));
    let eager = run("eager", modern(true, true, false, true, false, 1, 0));
    let incremental = run("incremental", modern(true, true, true, true, true, 1, 0));
    let noshelve = run("lazy-noshelve", modern(true, true, true, false, true, 1, 0));
    let nodomain = run("lazy-nodomain", modern(true, true, true, true, false, 1, 0));
    let legacy_db = run(
        "legacy-db",
        Knobs {
            inprocess: false,
            tiered: false,
            ..modern(true, true, true, true, true, 1, 0)
        },
    );
    let portfolio = run(
        "portfolio",
        modern(true, true, true, true, true, threads, cube_bits),
    );
    let phases = [
        &baseline,
        &eager,
        &incremental,
        &noshelve,
        &nodomain,
        &legacy_db,
        &portfolio,
    ];

    // Byte-identical output is the precondition for comparing the modes at
    // all — the layered arenas and the vault must only change speed.
    let digest = suite_digest(&baseline.union);
    for p in &phases[1..] {
        assert_eq!(
            suite_digest(&p.union),
            digest,
            "{} suite diverged from baseline",
            p.name
        );
    }
    // The exactly-once-per-sweep invariant: the whole incremental sweep
    // performs one full circuit→CNF compilation (the shared skeleton's);
    // everything else — later bounds, per-axiom queries — extends it.
    let num_queries = (bound - 1) * tso.axioms().len();
    assert_eq!(
        baseline.stats.compilations as usize, num_queries,
        "baseline must compile once per query"
    );
    // Per participating bound the chain grows by a skeleton link and one
    // definitional link per axiom; the very first link is the sweep's one
    // full compilation, everything after extends.
    let num_extensions = ((1 + tso.axioms().len()) * (bound - 1) - 1) as u64;
    for p in &phases[1..] {
        assert_eq!(
            p.stats.compilations, 1,
            "{}: an incremental sweep must compile in full exactly once",
            p.name
        );
        assert!(
            p.stats.extensions >= num_extensions && p.stats.reused_clauses > 0,
            "{}: incremental reuse counters must be nonzero \
             (extensions {}, reused {})",
            p.name,
            p.stats.extensions,
            p.stats.reused_clauses
        );
    }

    println!(
        "suite: {} tests (byte-identical in all modes)",
        baseline.union.len()
    );
    for p in &phases {
        println!(
            "{:<12} {:>8.2}s  compiles {:<3} extensions {:<4} reused clauses {:<8} \
             vault {}/{} published/imported",
            p.name,
            p.wall.as_secs_f64(),
            p.stats.compilations,
            p.stats.extensions,
            p.stats.reused_clauses,
            p.stats.vault.published,
            p.stats.vault.imported,
        );
    }
    // The lazy claim, calibrated to measurement: on one thread over the
    // identical formula chain, dormant definitional cones strictly cut
    // unit propagations at bounds 3–5. PR 5's laziness alone inverted at
    // bound 5 (+25% propagations with the vault on): pooled solvers
    // accumulate the union of their tasks' cones while dropped
    // stale-cone vault imports cost more pruning than dormancy saves.
    // The two fixes measured by the ablation phases — shelve-and-replay
    // of dormant-cone imports and the cone-scoped two-level decision
    // domain — recover the win, so the strict inequality now extends
    // through bound 5. Bound 2's sweep is a single trivially small link
    // where the few level-0 activation propagations are the whole story,
    // so the comparison is noise there and only reported. The assertion
    // compares the *deterministic* counters of the two single-threaded
    // phases (propagations, never wall time — a loaded CI host cannot
    // flake it), and both sides must have done real solver work: a
    // journal replay does zero solver work in every phase, leaving
    // nothing to compare. See DESIGN §3b for the measurement story.
    let reduction_vs_eager =
        |p: &Phase| 1.0 - p.stats.propagations as f64 / eager.stats.propagations.max(1) as f64;
    let reduction = reduction_vs_eager(&incremental);
    let deterministic = incremental.stats.raw_instances > 0 && eager.stats.raw_instances > 0;
    if deterministic && (3..=5).contains(&bound) {
        assert!(
            incremental.stats.propagations < eager.stats.propagations,
            "lazy propagation must beat eager through bound {bound}: {} !< {}",
            incremental.stats.propagations,
            eager.stats.propagations
        );
    }
    println!(
        "lazy: {} propagations vs {} eager ({:.1}% reduction), \
         {} vs {} decisions",
        incremental.stats.propagations,
        eager.stats.propagations,
        reduction * 100.0,
        incremental.stats.decisions,
        eager.stats.decisions,
    );
    println!(
        "ablation: noshelve {:.1}% / nodomain {:.1}% / full {:.1}% propagation \
         reduction vs eager",
        reduction_vs_eager(&noshelve) * 100.0,
        reduction_vs_eager(&nodomain) * 100.0,
        reduction * 100.0,
    );
    // The SAT-core modernization claim: on the identical engine
    // configuration, level-0 inprocessing + tiered retention strictly cut
    // unit propagations vs. the legacy core at bounds 3–5 — pooled
    // solvers shed retired tasks' blocking clauses and low-value learnts
    // instead of propagating through them for the rest of the bound. Same
    // calibration as the lazy assertion: deterministic single-threaded
    // counters only, bound 2 is noise and only reported.
    let modern_db_reduction =
        1.0 - incremental.stats.propagations as f64 / legacy_db.stats.propagations.max(1) as f64;
    println!(
        "sat-core: {:.1}% propagation reduction vs legacy-db \
         ({} vs {} props, {} vs {} decisions; \
         {} simplify_removed, {} subsumed, {} strengthened, {} gc runs / {} words)",
        modern_db_reduction * 100.0,
        incremental.stats.propagations,
        legacy_db.stats.propagations,
        incremental.stats.decisions,
        legacy_db.stats.decisions,
        incremental.stats.simplify_removed,
        incremental.stats.subsumed,
        incremental.stats.strengthened,
        incremental.stats.gc_runs,
        incremental.stats.gc_reclaimed_words,
    );
    if deterministic && (3..=5).contains(&bound) {
        // At bounds 3–4 the learnt database never outgrows its budget and
        // batch subsumption barely binds, so the modern core is designed
        // to be propagation-neutral there (never worse); the retention
        // win is structural only once pooled solvers accrete a full
        // bound-5 sweep's database, and there it must be strict.
        assert!(
            incremental.stats.propagations <= legacy_db.stats.propagations,
            "modern SAT core must never lose to legacy-db through bound {bound}: {} > {}",
            incremental.stats.propagations,
            legacy_db.stats.propagations
        );
        assert!(
            bound < 5 || incremental.stats.propagations < legacy_db.stats.propagations,
            "modern SAT core must strictly beat legacy-db through bound {bound}: {} !< {}",
            incremental.stats.propagations,
            legacy_db.stats.propagations
        );
        assert!(
            incremental.stats.simplify_removed > 0 && incremental.stats.gc_runs > 0,
            "inprocessing must do visible work at bound {bound} \
             (simplify_removed {}, gc_runs {})",
            incremental.stats.simplify_removed,
            incremental.stats.gc_runs
        );
    }
    // Regression gate against the committed baseline: the checked-in
    // `BENCH_baseline.json` records the reduction this tree achieved per
    // bound; a fresh deterministic run may not fall more than `tolerance`
    // below it. (The perf-smoke grep alone only validates a run against
    // itself.) Skipped when the file is absent — e.g. run from outside
    // the repo root — or records nothing for this bound.
    if deterministic {
        if let Ok(text) = std::fs::read_to_string("BENCH_baseline.json") {
            let tolerance = json_f64(&text, "tolerance").unwrap_or(0.05);
            if let Some(expected) = json_f64(&text, &format!("bound_{bound}")) {
                println!(
                    "baseline diff: reduction {:.4} vs committed {:.4} (tolerance {:.3})",
                    reduction, expected, tolerance
                );
                assert!(
                    reduction >= expected - tolerance,
                    "lazy_propagation_reduction regressed: {reduction:.4} < \
                     committed {expected:.4} - tolerance {tolerance:.3} at bound {bound}"
                );
            }
            if let Some(expected) = json_f64(&text, &format!("modern_bound_{bound}")) {
                println!(
                    "baseline diff: modern-db reduction {:.4} vs committed {:.4} \
                     (tolerance {:.3})",
                    modern_db_reduction, expected, tolerance
                );
                assert!(
                    modern_db_reduction >= expected - tolerance,
                    "modern_db_reduction regressed: {modern_db_reduction:.4} < \
                     committed {expected:.4} - tolerance {tolerance:.3} at bound {bound}"
                );
            }
        }
    }
    let ratio = |p: &Phase| baseline.wall.as_secs_f64() / p.wall.as_secs_f64().max(1e-9);
    println!(
        "speedup: incremental {:.2}x, portfolio ({} threads, {} cubes/query) {:.2}x \
         over the per-query-recompile baseline",
        ratio(&incremental),
        threads,
        1usize << cube_bits,
        ratio(&portfolio),
    );
    println!(
        "compile-once: {num_queries} queries → {} baseline / {} incremental full \
         CNF compilations",
        baseline.stats.compilations, incremental.stats.compilations
    );
    let (exported, imported, filtered) = portfolio.stats.exchange;
    println!("exchange: {exported} clauses exported, {imported} imported, {filtered} filtered");
    // Cone-aware counters: shelved imports that replayed once their cone
    // woke, and decisions the two-level domain served from the local cone.
    let replayed: u64 = phases.iter().map(|p| p.stats.shelved_replayed).sum();
    let domdecs: u64 = phases.iter().map(|p| p.stats.domain_decisions).sum();
    println!("cone: {replayed} shelved imports replayed, {domdecs} domain decisions");
    // Resilience counters: retried attempts and degraded workers over all
    // phases, plus faults injected via LITSYNTH_FAULT_PLAN (if any).
    let retries: u64 = phases.iter().map(|p| p.stats.retries).sum();
    let degraded: u64 = phases.iter().map(|p| p.stats.degraded).sum();
    let plan = litsynth_sat::FaultPlan::global();
    let injections = plan.as_ref().map(|p| p.injections()).unwrap_or(0);
    println!(
        "resilience: {retries} retried attempts, {degraded} degraded workers, \
         {injections} injected faults"
    );
    if plan.is_none() {
        assert_eq!(
            degraded, 0,
            "a fault-free run must not produce degraded workers"
        );
    }

    // Machine-readable results, written atomically next to the suites.
    let json = format!(
        "{{\n  \"experiment\": \"speedup\",\n  \"model\": \"tso\",\n  \
         \"bounds\": [2, {bound}],\n  \"threads\": {threads},\n  \
         \"cube_bits\": {cube_bits},\n  \"suite_tests\": {},\n  \
         \"byte_identical\": true,\n  \"phases\": {{\n    \"baseline\": {},\n    \
         \"eager\": {},\n    \"incremental\": {},\n    \"lazy-noshelve\": {},\n    \
         \"lazy-nodomain\": {},\n    \"legacy-db\": {},\n    \"portfolio\": {}\n  }},\n  \
         \"speedup_incremental\": {:.4},\n  \"speedup_portfolio\": {:.4},\n  \
         \"lazy_propagation_reduction\": {:.4},\n  \
         \"lazy_noshelve_reduction\": {:.4},\n  \
         \"lazy_nodomain_reduction\": {:.4},\n  \
         \"modern_db_reduction\": {:.4},\n  \
         \"resilience\": {{\"retries\": {retries}, \"degraded\": {degraded}, \
         \"injected_faults\": {injections}}}\n}}\n",
        baseline.union.len(),
        phase_json(&baseline),
        phase_json(&eager),
        phase_json(&incremental),
        phase_json(&noshelve),
        phase_json(&nodomain),
        phase_json(&legacy_db),
        phase_json(&portfolio),
        ratio(&incremental),
        ratio(&portfolio),
        reduction,
        reduction_vs_eager(&noshelve),
        reduction_vs_eager(&nodomain),
        modern_db_reduction,
    );
    let path = std::path::Path::new("BENCH_synth.json");
    match litsynth_core::atomic_write(path, json.as_bytes()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Writes the synthesized union suite to `suites_out/<model>/NNN.litmus`.
fn emit(model: &str, max_bound: usize, budget: u64) {
    fn go<M: MemoryModel + Sync>(m: &M, max_bound: usize, budget: u64) {
        let dir = std::path::PathBuf::from("suites_out").join(m.name().to_lowercase());
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| panic!("create output dir {}: {e}", dir.display()));
        let union = report::union_suite(m, 2..=max_bound, budget);
        for (i, (test, outcome)) in union.values().enumerate() {
            let named = test
                .clone()
                .with_name(format!("{}-{:04}", m.name().to_lowercase(), i));
            let text = litsynth_litmus::format::to_text(&named, outcome);
            let path = dir.join(format!("{i:04}.litmus"));
            // Atomic (temp + rename): a kill mid-emit leaves complete
            // files only, never a torn .litmus.
            litsynth_core::atomic_write(&path, text.as_bytes())
                .unwrap_or_else(|e| panic!("write test file {}: {e}", path.display()));
        }
        println!("wrote {} tests to {}", union.len(), dir.display());
    }
    match model {
        "sc" => go(&Sc::new(), max_bound, budget),
        "tso" => go(&Tso::new(), max_bound, budget),
        "power" => go(&Power::new(), max_bound, budget),
        "armv7" => go(&Power::armv7(), max_bound, budget),
        "scc" => go(&Scc::new(), max_bound, budget),
        "c11" => go(&C11::new(), max_bound, budget),
        other => eprintln!("unknown model {other:?}"),
    }
}

/// The serving acceptance experiment: a loopback `litsynth-serve` server
/// answering the TSO union over bounds `2..=bound`, timed cold (through
/// the shard layer) and warm (from the suite cache), then hammered by
/// `clients` concurrent connections repeating the warm query.
///
/// Asserts the serving contract — the cold suite is byte-identical to a
/// direct `synthesize_union_up_to` call, and the warm repeat is a cache
/// hit with zero compilations — and writes the latencies, hit rate, and
/// shard counters to `BENCH_synth.json` (CI's serve-smoke greps it).
fn serve(bound: usize, clients: usize) {
    use litsynth_serve::{Client, QueryRequest, ServeConfig, Server};
    let clients = clients.max(1);
    println!("\n## Serving — loopback litsynth-serve, TSO bounds 2..={bound}, {clients} clients\n");
    let server = Server::start(ServeConfig {
        unit_threads: env_usize("LITSYNTH_THREADS", 1),
        cube_bits: env_usize("LITSYNTH_CUBE_BITS", 0),
        max_bound: bound,
        ..ServeConfig::default()
    })
    .expect("loopback server starts");
    let addr = server.addr();
    println!("serving on {addr}");
    let req = QueryRequest::sweep("tso", 2, bound);

    let mut client = Client::connect(addr).expect("client connects");
    let t0 = std::time::Instant::now();
    let cold = client.query(&req).expect("cold query succeeds");
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(!cold.reply.cached, "first query must be cold");
    let direct = litsynth_core::encode_suite_body(&litsynth_core::synthesize_union_up_to(
        &Tso::new(),
        2..=bound,
        SynthConfig::new,
    ));
    assert_eq!(
        cold.reply.suite, direct,
        "served suite must be byte-identical"
    );

    let t1 = std::time::Instant::now();
    let warm = client.query(&req).expect("warm query succeeds");
    let warm_ms = t1.elapsed().as_secs_f64() * 1e3;
    assert!(warm.reply.cached, "repeat must hit the suite cache");
    assert_eq!(warm.reply.compilations, 0, "warm queries must not compile");
    assert_eq!(warm.reply.suite, cold.reply.suite);
    println!(
        "cold: {cold_ms:.1} ms ({} compilations) | warm: {warm_ms:.3} ms (cached, 0 compilations)",
        cold.reply.compilations
    );

    // Concurrent warm load: every client repeats the cached query.
    const REPEATS: usize = 8;
    let t2 = std::time::Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                let mut c = Client::connect(addr).expect("load client connects");
                for _ in 0..REPEATS {
                    let served = c.query(&req).expect("load query succeeds");
                    assert!(served.reply.cached);
                }
            });
        }
    });
    let load_s = t2.elapsed().as_secs_f64();
    let warm_qps = (clients * REPEATS) as f64 / load_s.max(1e-9);
    println!(
        "load: {clients} clients x {REPEATS} warm queries in {load_s:.3} s ({warm_qps:.0} qps)"
    );

    let stats = server.stats();
    let hit_rate = stats.cache.hits as f64 / (stats.cache.hits + stats.cache.misses).max(1) as f64;
    println!(
        "cache: {} hits, {} misses ({:.1}% hit rate) | shard: {} local, {} stolen, \
         {} respawns",
        stats.cache.hits,
        stats.cache.misses,
        hit_rate * 100.0,
        stats.shard.claimed_local,
        stats.shard.stolen,
        stats.shard.respawns,
    );
    server.shutdown();

    let json = format!(
        "{{\n  \"experiment\": \"serve\",\n  \"model\": \"tso\",\n  \
         \"bounds\": [2, {bound}],\n  \"clients\": {clients},\n  \
         \"cold_ms\": {cold_ms:.3},\n  \"warm_ms\": {warm_ms:.3},\n  \
         \"warm_qps\": {warm_qps:.1},\n  \"suite_tests\": {},\n  \
         \"byte_identical\": true,\n  \"cold_compilations\": {},\n  \
         \"warm_compilations\": {},\n  \"cache_hits\": {},\n  \
         \"cache_misses\": {},\n  \"cache_hit_rate\": {hit_rate:.4},\n  \
         \"shard\": {{\"claimed_local\": {}, \"stolen\": {}, \"reassigned\": {}, \
         \"respawns\": {}}},\n  \"engage_downgrades\": {}\n}}\n",
        cold.reply.tests,
        cold.reply.compilations,
        warm.reply.compilations,
        stats.cache.hits,
        stats.cache.misses,
        stats.shard.claimed_local,
        stats.shard.stolen,
        stats.shard.reassigned,
        stats.shard.respawns,
        litsynth_core::engage_downgrades(),
    );
    let path = std::path::Path::new("BENCH_synth.json");
    match litsynth_core::atomic_write(path, json.as_bytes()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// The consistency-oracle acceptance experiment (CI's oracle-smoke greps
/// its JSON):
///
/// 1. **Stress row** — a test with 6 same-address writes whose outcome is
///    SC-forbidden: enumeration walks every (rf, co) candidate (5040
///    executions), the saturation checker refutes it from one forced
///    cycle. `oracle_speedup` is the wall-clock ratio, reported as an
///    integer so the CI grep (`"oracle_speedup": [0-9]{2,}` — i.e. ≥ 10×)
///    stays a plain regex.
/// 2. **Suite sweep** — every classics/owens/cambridge verdict computed
///    both ways; `oracle_agreements` must equal `oracle_total` and
///    `oracle_disagreements` must be 0.
/// 3. **CHECK serving** — a loopback server answering the owens suite
///    over the `CHECK` verb, cold then cached; `check_qps` is the
///    sustained rate.
fn oracle() {
    use litsynth_litmus::suites::classics;
    use litsynth_litmus::{Execution, Instr, LitmusTest};
    use litsynth_models::check;

    println!("\n## Consistency oracle — saturation checker vs enumeration\n");

    // Stress row: T0 = Wx;Wx;Wx;Rx, T1 = Wx;Wx;Wx, and the read observes
    // the initial value — po already orders three writes before it, so
    // the verdict is forbidden and saturation finds the fr/po cycle
    // during seeding, while enumeration must reject all 7 rf choices
    // x 720 coherence orders one by one.
    let stress = LitmusTest::new(
        "OracleStress",
        vec![
            vec![
                Instr::store(0),
                Instr::store(0),
                Instr::store(0),
                Instr::load(0),
            ],
            vec![Instr::store(0), Instr::store(0), Instr::store(0)],
        ],
    );
    let weak = classics::oc([(3, None)], []);
    let executions = Execution::iter(&stress).count();
    let sc = Sc::new();
    let t0 = std::time::Instant::now();
    assert!(
        oracle::forbidden(&sc, &stress, &weak),
        "stress outcome must be forbidden by enumeration"
    );
    let enum_s = t0.elapsed().as_secs_f64();
    // The checker refutes this in microseconds; average a batch so the
    // ratio isn't timer-resolution noise.
    const CHECK_ITERS: u32 = 100;
    let t1 = std::time::Instant::now();
    for _ in 0..CHECK_ITERS {
        assert!(
            check::forbidden(&sc, &stress, &weak),
            "stress outcome must be forbidden by the checker"
        );
    }
    let check_s = t1.elapsed().as_secs_f64() / f64::from(CHECK_ITERS);
    let oracle_speedup = (enum_s / check_s.max(1e-12)).round() as u64;
    println!(
        "stress: {executions} executions | enumeration {:.2} ms | checker {:.4} ms | {}x",
        enum_s * 1e3,
        check_s * 1e3,
        oracle_speedup
    );

    // Suite sweep: both deciders over every reference verdict.
    let tso = Tso::new();
    let power = Power::new();
    let mut entries: Vec<(&'static str, LitmusTest, litsynth_litmus::Outcome)> = Vec::new();
    for e in owens::suite() {
        entries.push(("tso", e.test, e.outcome));
    }
    for e in cambridge::suite() {
        entries.push(("power", e.test, e.outcome));
    }
    for (t, o) in [
        classics::mp(),
        classics::sb(),
        classics::lb(),
        classics::s(),
        classics::r(),
        classics::two_plus_two_w(),
        classics::wrc(),
        classics::iriw(),
        classics::corr(),
        classics::coww(),
        classics::corw(),
        classics::cowr(),
        classics::colb(),
        classics::sb_fences(),
        classics::rwc(),
        classics::rwc_fence(),
        classics::rmw_rmw(),
    ] {
        entries.push(("sc", t.clone(), o.clone()));
        entries.push(("tso", t, o));
    }
    let decide_enum = |m: &str, t: &LitmusTest, o: &litsynth_litmus::Outcome| match m {
        "sc" => oracle::forbidden(&sc, t, o),
        "tso" => oracle::forbidden(&tso, t, o),
        _ => oracle::forbidden(&power, t, o),
    };
    let decide_check = |m: &str, t: &LitmusTest, o: &litsynth_litmus::Outcome| match m {
        "sc" => check::forbidden(&sc, t, o),
        "tso" => check::forbidden(&tso, t, o),
        _ => check::forbidden(&power, t, o),
    };
    let t2 = std::time::Instant::now();
    let enum_verdicts: Vec<bool> = entries
        .iter()
        .map(|(m, t, o)| decide_enum(m, t, o))
        .collect();
    let suite_enum_s = t2.elapsed().as_secs_f64();
    let t3 = std::time::Instant::now();
    let check_verdicts: Vec<bool> = entries
        .iter()
        .map(|(m, t, o)| decide_check(m, t, o))
        .collect();
    let suite_check_s = t3.elapsed().as_secs_f64();
    let oracle_total = entries.len();
    let oracle_agreements = enum_verdicts
        .iter()
        .zip(&check_verdicts)
        .filter(|(a, b)| a == b)
        .count();
    let oracle_disagreements = oracle_total - oracle_agreements;
    println!(
        "suites: {oracle_agreements}/{oracle_total} agree | enumeration {:.1} ms | \
         checker {:.1} ms",
        suite_enum_s * 1e3,
        suite_check_s * 1e3,
    );
    assert_eq!(
        oracle_disagreements, 0,
        "checker must agree with enumeration"
    );

    // CHECK serving over loopback: cold round, then two cached rounds.
    let (check_qps, check_cache_hits) = {
        use litsynth_serve::{Client, ServeConfig, Server};
        let server = Server::start(ServeConfig::default()).expect("loopback server starts");
        let mut client = Client::connect(server.addr()).expect("client connects");
        let suite = owens::suite();
        let mut requests = 0usize;
        let t4 = std::time::Instant::now();
        for _round in 0..3 {
            for e in &suite {
                let verdict = client
                    .check("tso", &e.test, &e.outcome)
                    .expect("CHECK round-trips");
                assert_eq!(
                    !verdict.consistent,
                    e.forbidden,
                    "{}: served verdict must match the suite",
                    e.test.name()
                );
                requests += 1;
            }
        }
        let qps = requests as f64 / t4.elapsed().as_secs_f64().max(1e-9);
        let stats = server.stats();
        assert_eq!(stats.check_requests, requests as u64);
        assert!(
            stats.check_cache_hits >= (2 * suite.len()) as u64,
            "repeat rounds must hit the check cache"
        );
        println!(
            "serve: {requests} CHECKs ({} cached) in {:.3} s ({qps:.0} qps)",
            stats.check_cache_hits,
            t4.elapsed().as_secs_f64()
        );
        server.shutdown();
        (qps, stats.check_cache_hits)
    };

    let json = format!(
        "{{\n  \"experiment\": \"oracle\",\n  \"stress_test\": \"OracleStress\",\n  \
         \"stress_executions\": {executions},\n  \"enum_ms\": {:.3},\n  \
         \"check_ms\": {:.5},\n  \"oracle_speedup\": {oracle_speedup},\n  \
         \"oracle_agreements\": {oracle_agreements},\n  \"oracle_total\": {oracle_total},\n  \
         \"oracle_disagreements\": {oracle_disagreements},\n  \
         \"suite_enum_ms\": {:.3},\n  \"suite_check_ms\": {:.3},\n  \
         \"check_qps\": {check_qps:.1},\n  \"check_cache_hits\": {check_cache_hits}\n}}\n",
        enum_s * 1e3,
        check_s * 1e3,
        suite_enum_s * 1e3,
        suite_check_s * 1e3,
    );
    let path = std::path::Path::new("BENCH_synth.json");
    match litsynth_core::atomic_write(path, json.as_bytes()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Either flavor of remote worker: a real `litsynth-serve worker`
/// process (when the sibling binary is built) or an in-process thread.
enum RemoteWorker {
    Process(std::process::Child),
    Thread(litsynth_serve::WorkerHandle),
}

impl RemoteWorker {
    fn stop(self) {
        match self {
            RemoteWorker::Process(mut child) => {
                let _ = child.kill();
                let _ = child.wait();
            }
            RemoteWorker::Thread(handle) => handle.stop(),
        }
    }
}

/// The multi-host tier over loopback: a no-fault leg and a worker-kill
/// leg, both asserting byte identity against the direct sweep. Counters
/// go to `BENCH_synth.json` for CI's remote-smoke.
fn remote(bound: usize) {
    use litsynth_serve::{
        Client, FaultKind, QueryRequest, ServeConfig, Server, WorkerConfig, WorkerFault,
    };
    println!("\n## Remote — loopback coordinator + 2 workers, TSO bounds 2..={bound}\n");
    let worker_bin = std::env::current_exe()
        .ok()
        .and_then(|exe| exe.parent().map(|d| d.join("litsynth-serve")))
        .filter(|p| p.is_file());
    let worker_mode = if worker_bin.is_some() {
        "process"
    } else {
        "thread"
    };
    println!("worker mode: {worker_mode}");
    let direct = litsynth_core::encode_suite_body(&litsynth_core::synthesize_union_up_to(
        &Tso::new(),
        2..=bound,
        SynthConfig::new,
    ));
    // Both kill-leg workers carry the same exit fault: whichever claims
    // the unit dies mid-run, deterministically, like a kill -9.
    let kill_key = "tso/sc_per_loc/2";
    let spawn = |addr: std::net::SocketAddr, fault_key: Option<&str>| -> RemoteWorker {
        match &worker_bin {
            Some(bin) => {
                let mut cmd = std::process::Command::new(bin);
                cmd.arg("worker").arg(addr.to_string());
                if let Some(key) = fault_key {
                    cmd.arg("--fault-exit-key").arg(key);
                }
                RemoteWorker::Process(cmd.spawn().expect("worker process spawns"))
            }
            None => RemoteWorker::Thread(litsynth_serve::WorkerHandle::spawn(
                addr.to_string(),
                WorkerConfig {
                    fault: fault_key.map(|key| WorkerFault {
                        key: key.to_string(),
                        kind: FaultKind::ExitMidUnit,
                    }),
                    ..WorkerConfig::default()
                },
            )),
        }
    };
    let leg = |fault_key: Option<&str>| {
        let server = Server::start(ServeConfig {
            max_bound: bound,
            lease_ms: 2_000,
            ..ServeConfig::default()
        })
        .expect("coordinator starts");
        let addr = server.addr();
        let workers = vec![spawn(addr, fault_key), spawn(addr, fault_key)];
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while server.stats().remote.workers_live < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "both workers must register within 10s"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let mut client = Client::connect(addr).expect("client connects");
        let t0 = std::time::Instant::now();
        let served = client
            .query(&QueryRequest::sweep("tso", 2, bound))
            .expect("remote query completes");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            served.reply.suite, direct,
            "served suite must be byte-identical"
        );
        let stats = server.stats().remote;
        for w in workers {
            w.stop();
        }
        server.shutdown();
        (ms, stats)
    };

    let (nofault_ms, nofault) = leg(None);
    assert_eq!(
        nofault.degraded_to_local, 0,
        "a healthy fleet must not degrade: {nofault:?}"
    );
    println!(
        "no-fault: {nofault_ms:.1} ms, {} units remote, 0 degraded",
        nofault.completed_remote
    );
    let (kill_ms, kill) = leg(Some(kill_key));
    assert!(
        kill.reclaimed_leases >= 1,
        "the killed worker's lease must be reclaimed: {kill:?}"
    );
    println!(
        "kill: {kill_ms:.1} ms, {} leases reclaimed, {} degraded to local — bytes unchanged",
        kill.reclaimed_leases, kill.degraded_to_local
    );

    let json = format!(
        "{{\n  \"experiment\": \"remote\",\n  \"model\": \"tso\",\n  \
         \"bounds\": [2, {bound}],\n  \"worker_mode\": \"{worker_mode}\",\n  \
         \"byte_identical\": true,\n  \"nofault_ms\": {nofault_ms:.3},\n  \
         \"nofault_completed_remote\": {},\n  \"nofault_degraded_to_local\": {},\n  \
         \"kill_ms\": {kill_ms:.3},\n  \"reclaimed_leases\": {},\n  \
         \"lease_expiries\": {},\n  \"degraded_to_local\": {},\n  \
         \"rejected_results\": {}\n}}\n",
        nofault.completed_remote,
        nofault.degraded_to_local,
        kill.reclaimed_leases,
        kill.lease_expiries,
        kill.degraded_to_local,
        kill.rejected_results,
    );
    let path = std::path::Path::new("BENCH_synth.json");
    match litsynth_core::atomic_write(path, json.as_bytes()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Table 2: which instruction relaxations apply to which model.
fn table2(out: &mut String) {
    outln!(out, "\n## Table 2 — relaxation applicability\n");
    outln!(out, "| model | RI | DRMW | DF | DMO | RD | DS |");
    outln!(out, "|-------|----|------|----|-----|----|----|");
    fn row<M: MemoryModel>(out: &mut String, m: &M) {
        let r = m.relaxations();
        let mark = |k: RelaxKind| if r.contains(&k) { "x" } else { " " };
        outln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} |",
            m.name(),
            mark(RelaxKind::Ri),
            mark(RelaxKind::Drmw),
            mark(RelaxKind::Df),
            mark(RelaxKind::Dmo),
            mark(RelaxKind::Rd),
            mark(RelaxKind::Ds),
        );
    }
    row(out, &Sc::new());
    row(out, &Tso::new());
    row(out, &Power::new());
    row(out, &Power::armv7());
    row(out, &Scc::new());
    row(out, &C11::new());
}

/// Table 4: the Owens suite vs the synthesized TSO union, with subtest
/// coverage for the non-minimal entries.
fn table4(out: &mut String, budget: u64) {
    outln!(
        out,
        "\n## Table 4 — Owens suite vs synthesized TSO suites (bounds 2–6)\n"
    );
    let tso = Tso::new();
    let union = report::union_suite(&tso, 2..=6, budget);
    outln!(
        out,
        "synthesized TSO-union (≤6 insts): {} tests",
        union.len()
    );

    let mut rows: Vec<(usize, String, String)> = Vec::new();
    for e in owens::suite() {
        if !e.forbidden {
            continue;
        }
        let minimal = minimal_for_some_axiom(&tso, &e.test, &e.outcome);
        let status = if minimal {
            "minimal (in union)".to_string()
        } else {
            let covers = covering_subtests(&tso, &e.test, union.values());
            let names: Vec<String> = covers.iter().take(3).map(|(t, o)| o.display(t)).collect();
            format!(
                "non-minimal; covered by {} union test(s) {}",
                covers.len(),
                names.join(" | ")
            )
        };
        rows.push((e.test.num_events(), e.test.name().to_string(), status));
    }
    rows.sort();
    outln!(out, "\n| #insts | Owens test | verdict |");
    outln!(out, "|--------|------------|---------|");
    for (n, name, status) in rows {
        outln!(out, "| {n} | {name} | {status} |");
    }
}

/// Figure 11: the sc_per_loc tests that are in neither causality nor Owens.
fn fig11(out: &mut String, budget: u64) {
    outln!(out, "\n## Figure 11 — sc_per_loc-only TSO tests\n");
    let tso = Tso::new();
    let mut scl: BTreeMap<String, _> = BTreeMap::new();
    let mut caus: BTreeMap<String, _> = BTreeMap::new();
    for n in 2..=4 {
        let r = synthesize_axiom(&tso, "sc_per_loc", &cfg(n, budget));
        scl.extend(r.tests);
        let r = synthesize_axiom(&tso, "causality", &cfg(n, budget));
        caus.extend(r.tests);
    }
    outln!(out, "sc_per_loc total: {} (paper: 10)", scl.len());
    let only: Vec<_> = scl.iter().filter(|(k, _)| !caus.contains_key(*k)).collect();
    outln!(out, "sc_per_loc ∖ causality: {} tests:", only.len());
    for (_, (t, o)) in only {
        outln!(out, "{t}  outcome: {}\n", o.display(t));
    }
}

/// Figure 12: the rmw_atomicity tests.
fn fig12(out: &mut String, budget: u64) {
    outln!(out, "\n## Figure 12 — TSO rmw_atomicity tests\n");
    let tso = Tso::new();
    let mut all: BTreeMap<String, _> = BTreeMap::new();
    for n in 2..=5 {
        let r = synthesize_axiom(&tso, "rmw_atomicity", &cfg(n, budget));
        all.extend(r.tests);
    }
    outln!(out, "rmw_atomicity total: {} (paper: 4)", all.len());
    for (t, o) in all.values() {
        outln!(out, "{t}  outcome: {}\n", o.display(t));
    }
}

/// Figure 13: TSO counts and runtimes per bound.
fn fig13(out: &mut String, budget: u64) {
    outln!(out, "\n## Figure 13 — TSO results\n");
    let tso = Tso::new();
    let owens_forbidden: Vec<_> = owens::suite().into_iter().filter(|e| e.forbidden).collect();

    outln!(out, "| bound | Owens(≤) | tso-union(≤) | all-progs(=) | sc_per_loc | rmw_atom | causality | runtime(s) |");
    outln!(out, "|-------|----------|--------------|--------------|------------|----------|-----------|------------|");
    let mut union: BTreeMap<String, _> = BTreeMap::new();
    for n in 2..=6 {
        let mut per_axiom = Vec::new();
        let mut secs = 0.0;
        let mut trunc = false;
        for ax in tso.axioms() {
            let r = synthesize_axiom(&tso, ax, &cfg(n, budget));
            secs += r.elapsed.as_secs_f64();
            trunc |= r.truncated;
            per_axiom.push(r.len());
            union.extend(r.tests);
        }
        let owens_n = owens_forbidden
            .iter()
            .filter(|e| e.test.num_events() <= n)
            .count();
        outln!(
            out,
            "| {n} | {owens_n} | {} | {} | {} | {} | {} | {:.2}{} |",
            union.len(),
            count_programs(&tso, n, 3),
            per_axiom[0],
            per_axiom[1],
            per_axiom[2],
            secs,
            if trunc { " (truncated)" } else { "" },
        );
    }
}

/// Figure 14: the WWC symmetry the hash canonicalizer misses.
fn fig14(out: &mut String, budget: u64) {
    outln!(
        out,
        "\n## Figure 14 — canonicalizer ablation (hash vs exact)\n"
    );
    let tso = Tso::new();
    for n in 4..=5 {
        let mut exact_cfg = cfg(n, budget);
        exact_cfg.exact_canon = true;
        let mut hash_cfg = cfg(n, budget);
        hash_cfg.exact_canon = false;
        let mut exact = 0;
        let mut hash = 0;
        for ax in tso.axioms() {
            exact += synthesize_axiom(&tso, ax, &exact_cfg).len();
            hash += synthesize_axiom(&tso, ax, &hash_cfg).len();
        }
        outln!(
            out,
            "bound {n}: exact canonicalizer {exact} tests, paper's hash scheme {hash} \
             ({} redundant duplicates, the WWC effect)",
            hash - exact
        );
    }
}

/// Figure 16: Power results vs the Cambridge suite and a diy-style
/// baseline (the cats-suite stand-in; DESIGN.md substitution 2).
fn fig16(out: &mut String, budget: u64) {
    outln!(out, "\n## Figure 16 — Power results\n");
    let power = Power::new();
    let cambridge_forbidden: Vec<_> = cambridge::suite()
        .into_iter()
        .filter(|e| e.forbidden)
        .collect();
    let diy = DiyBaseline::generate(&power, 500);
    outln!(
        out,
        "baselines: Cambridge {} forbidden tests; diy-style {} distinct forbidden tests",
        cambridge_forbidden.len(),
        diy.len()
    );

    outln!(out, "\n| bound | Cambridge(≤) | diy(≤) | power-union(≤) | sc_per_loc | no_thin_air | observation | propagation | runtime(s) |");
    outln!(out, "|-------|--------------|--------|----------------|------------|-------------|-------------|-------------|------------|");
    let mut union: BTreeMap<String, _> = BTreeMap::new();
    for n in 2..=5 {
        let mut per_axiom = Vec::new();
        let mut secs = 0.0;
        let mut trunc = false;
        for ax in power.axioms() {
            let r = synthesize_axiom(&power, ax, &cfg(n, budget));
            secs += r.elapsed.as_secs_f64();
            trunc |= r.truncated;
            per_axiom.push(r.len());
            union.extend(r.tests);
        }
        let cam = cambridge_forbidden
            .iter()
            .filter(|e| e.test.num_events() <= n)
            .count();
        let d = diy.iter().filter(|(t, _)| t.num_events() <= n).count();
        outln!(
            out,
            "| {n} | {cam} | {d} | {} | {} | {} | {} | {} | {:.2}{} |",
            union.len(),
            per_axiom[0],
            per_axiom[1],
            per_axiom[2],
            per_axiom[3],
            secs,
            if trunc { " (truncated)" } else { "" },
        );
    }

    // Cambridge coverage check (the PPOAA remark in §6.2).
    outln!(out, "\nCambridge forbidden tests vs minimality:");
    for e in &cambridge_forbidden {
        let minimal = minimal_for_some_axiom(&power, &e.test, &e.outcome);
        if !minimal {
            outln!(
                out,
                "  {}: NOT minimal as presented (cf. PPOAA, §6.2)",
                e.test.name()
            );
        }
    }
}

/// Figure 20: SCC results.
fn fig20(out: &mut String, budget: u64) {
    outln!(out, "\n## Figure 20 — SCC results\n");
    let scc = Scc::new();
    outln!(
        out,
        "| bound | scc-union(≤) | sc_per_loc | no_thin_air | rmw_atom | causality | runtime(s) |"
    );
    outln!(
        out,
        "|-------|--------------|------------|-------------|----------|-----------|------------|"
    );
    let mut union: BTreeMap<String, _> = BTreeMap::new();
    for n in 2..=5 {
        let mut per_axiom = Vec::new();
        let mut secs = 0.0;
        let mut trunc = false;
        for ax in scc.axioms() {
            let r = synthesize_axiom(&scc, ax, &cfg(n, budget));
            secs += r.elapsed.as_secs_f64();
            trunc |= r.truncated;
            per_axiom.push(r.len());
            union.extend(r.tests);
        }
        outln!(
            out,
            "| {n} | {} | {} | {} | {} | {} | {:.2}{} |",
            union.len(),
            per_axiom[0],
            per_axiom[1],
            per_axiom[2],
            per_axiom[3],
            secs,
            if trunc { " (truncated)" } else { "" },
        );
    }
}

/// §6.4: C11 per-axiom counts (the paper's text truncates mid-section; the
/// same per-axiom/per-bound shape is reported).
fn c11(out: &mut String, budget: u64) {
    outln!(out, "\n## §6.4 — C11 results (reconstructed shape)\n");
    let m = C11::new();
    outln!(
        out,
        "| bound | c11-union(≤) | coherence | atomicity | no_thin_air | seq_cst | runtime(s) |"
    );
    outln!(
        out,
        "|-------|--------------|-----------|-----------|-------------|---------|------------|"
    );
    let mut union: BTreeMap<String, _> = BTreeMap::new();
    for n in 2..=4 {
        let mut per_axiom = Vec::new();
        let mut secs = 0.0;
        let mut trunc = false;
        for ax in m.axioms() {
            let r = synthesize_axiom(&m, ax, &cfg(n, budget));
            secs += r.elapsed.as_secs_f64();
            trunc |= r.truncated;
            per_axiom.push(r.len());
            union.extend(r.tests);
        }
        outln!(
            out,
            "| {n} | {} | {} | {} | {} | {} | {:.2}{} |",
            union.len(),
            per_axiom[0],
            per_axiom[1],
            per_axiom[2],
            per_axiom[3],
            secs,
            if trunc { " (truncated)" } else { "" },
        );
    }
}

/// Figures 18/19: the SB false negative and its workaround.
fn scc_wa(out: &mut String, budget: u64) {
    outln!(out, "\n## Figures 18/19 — SCC sc workaround\n");
    let scc = Scc::new();
    // SB with two FenceSC instructions is 6 events.
    let r = synthesize_axiom(&scc, "causality", &cfg(6, budget));
    let sb_like = r
        .tests
        .values()
        .filter(|(t, _)| {
            let fences = (0..t.num_events())
                .filter(|&g| t.instr(g).is_fence())
                .count();
            fences == 2
        })
        .count();
    outln!(
        out,
        "SCC causality bound 6: {} tests, {} with two FenceSC instructions \
         (SB+FenceSCs present ⇒ the Figure 19 workaround recovered the \
         Figure 18 false negative){}",
        r.len(),
        sb_like,
        if r.truncated { " [truncated]" } else { "" }
    );
    for (t, o) in r.tests.values().filter(|(t, _)| {
        (0..t.num_events())
            .filter(|&g| t.instr(g).is_fence())
            .count()
            == 2
    }) {
        outln!(out, "{t}  outcome: {}", o.display(t));
    }
}

/// §6.2's ARMv7 remark: "broadly similar to Power, but … no equivalent of
/// the Power lwsync" — compare the two unions directly.
fn armv7(out: &mut String, budget: u64) {
    outln!(out, "\n## §6.2 — Power vs ARMv7 (no lwsync)\n");
    let power = Power::new();
    let armv7 = Power::armv7();
    outln!(
        out,
        "| bound | power-union | armv7-union | lwsync tests (power only) |"
    );
    outln!(
        out,
        "|-------|-------------|-------------|---------------------------|"
    );
    let mut pu: BTreeMap<String, _> = BTreeMap::new();
    let mut au: BTreeMap<String, _> = BTreeMap::new();
    for n in 2..=5 {
        for ax in power.axioms() {
            pu.extend(synthesize_axiom(&power, ax, &cfg(n, budget)).tests);
            au.extend(synthesize_axiom(&armv7, ax, &cfg(n, budget)).tests);
        }
        let lw = pu
            .values()
            .filter(|(t, _)| {
                (0..t.num_events()).any(|g| {
                    matches!(
                        t.instr(g),
                        litsynth_litmus::Instr::Fence {
                            kind: litsynth_litmus::FenceKind::Lightweight,
                            ..
                        }
                    )
                })
            })
            .count();
        outln!(out, "| {n} | {} | {} | {lw} |", pu.len(), au.len());
    }
    // Every ARMv7 test is (canonically) a Power test: the models agree on
    // the lwsync-free fragment at these bounds.
    let only_armv7 = au.keys().filter(|k| !pu.contains_key(*k)).count();
    outln!(
        out,
        "\ntests in armv7-union but not power-union: {only_armv7}"
    );
}

/// §4.3 ablation: what the orphaned-read policy is worth. With
/// `orphan_unconstrained = false`, a read whose rf source was removed by RI
/// snaps to the initial value — reintroducing exactly the class of false
/// negatives §4.3's "leave it unconstrained" choice avoids.
fn orphan(out: &mut String, budget: u64) {
    outln!(
        out,
        "\n## §4.3 ablation — orphaned-read policy (TSO sc_per_loc)\n"
    );
    let tso = Tso::new();
    for unconstrained in [true, false] {
        let mut total = 0;
        for n in 2..=4 {
            let mut c = cfg(n, budget);
            c.orphan_unconstrained = unconstrained;
            total += synthesize_axiom(&tso, "sc_per_loc", &c).len();
        }
        outln!(
            out,
            "orphan reads {:<14} → sc_per_loc suite (bounds ≤4): {} tests{}",
            if unconstrained {
                "unconstrained"
            } else {
                "read-initial"
            },
            total,
            if unconstrained {
                " (paper: 10)"
            } else {
                " (CoWR-class false negatives)"
            },
        );
    }
}

/// §4.2/§6.3: quantifying the Figure 5c approximation against the exact
/// exists-forall oracle, by exhaustive program enumeration at small bounds.
fn soundness(out: &mut String, budget: u64) {
    outln!(
        out,
        "\n## Soundness — Figure 5c vs the exact oracle (TSO)\n"
    );
    let tso = Tso::new();
    for n in 2..=3 {
        let mut synth: BTreeMap<String, _> = BTreeMap::new();
        for ax in tso.axioms() {
            synth.extend(synthesize_axiom(&tso, ax, &cfg(n, budget)).tests);
        }
        // Exhaustive ground truth: every canonical program of n events,
        // every candidate outcome, exact minimality for some axiom.
        let mut truth: BTreeMap<String, _> = BTreeMap::new();
        for (t, o) in report::enumerate_all_tests(&tso, n) {
            if minimal_for_some_axiom(&tso, &t, &o) {
                truth.insert(canonical_key_exact(&t, &o), (t, o));
            }
        }
        let both = synth.keys().filter(|k| truth.contains_key(*k)).count();
        let only_synth = synth.len() - both;
        let only_truth = truth.len() - both;
        outln!(
            out,
            "bound {n}: exact-minimal {} | Fig5c-synthesized {} | both {} | \
             false positives {} | false negatives {}",
            truth.len(),
            synth.len(),
            both,
            only_synth,
            only_truth
        );
        for (k, (t, o)) in &truth {
            if !synth.contains_key(k) {
                outln!(out, "  missed (false negative): {t}  {}", o.display(t));
            }
        }
        for (k, (t, o)) in &synth {
            if !truth.contains_key(k) {
                outln!(out, "  extra (false positive): {t}  {}", o.display(t));
                // False positives are harmless (§4.3) but must still be
                // forbidden outcomes.
                assert!(
                    tso.axioms()
                        .iter()
                        .any(|ax| !oracle::observable_axiom(&tso, ax, t, o)),
                    "a synthesized test must at least be forbidden"
                );
            }
        }
    }
    let _ = check_minimal(
        &tso,
        "causality",
        &litsynth_litmus::suites::classics::mp().0,
        &litsynth_litmus::suites::classics::mp().1,
    );
}
