//! A minimal wall-clock benchmark harness (the workspace carries no
//! external dependencies, so no Criterion).
//!
//! Each benchmark runs a warm-up pass, then `samples` timed iterations,
//! and prints min/median/max — enough to read off the growth curves the
//! figures reproduce. Results go to stdout; pass `--bench` (as `cargo
//! bench` does) or nothing.

use std::time::{Duration, Instant};

/// A named group of benchmarks, printed as a markdown table.
pub struct Group {
    name: String,
    samples: usize,
    header_printed: bool,
}

impl Group {
    /// Creates a group; `samples` is the number of timed iterations per
    /// benchmark.
    pub fn new(name: impl Into<String>, samples: usize) -> Group {
        Group {
            name: name.into(),
            samples: samples.max(1),
            header_printed: false,
        }
    }

    /// Times `f` and prints one table row. The closure's return value is
    /// consumed with a black-box barrier so the work is not optimized out.
    pub fn bench<T>(&mut self, id: impl AsRef<str>, mut f: impl FnMut() -> T) {
        if !self.header_printed {
            println!("\n## {}  ({} samples)\n", self.name, self.samples);
            println!("| benchmark | min | median | max |");
            println!("|-----------|-----|--------|-----|");
            self.header_printed = true;
        }
        std::hint::black_box(f()); // warm-up
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(f());
                t0.elapsed()
            })
            .collect();
        times.sort_unstable();
        println!(
            "| {} | {} | {} | {} |",
            id.as_ref(),
            fmt(times[0]),
            fmt(times[times.len() / 2]),
            fmt(times[times.len() - 1]),
        );
    }
}

fn fmt(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_prints() {
        let mut g = Group::new("smoke", 3);
        let mut count = 0u64;
        g.bench("counting", || {
            count += 1;
            count
        });
        // warm-up + 3 samples.
        assert_eq!(count, 4);
    }
}
