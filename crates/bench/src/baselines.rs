//! Baseline test suites for the comparisons in Figures 13 and 16.

use litsynth_litmus::diy::{DiyConfig, DiyGenerator, LocalEdge};
use litsynth_litmus::{canonical_key_exact, DepKind, FenceKind, LitmusTest, Outcome};
use litsynth_models::{oracle, MemoryModel};
use std::collections::BTreeMap;

/// The diy-style randomized baseline — our stand-in for the `cats` suite
/// (DESIGN.md substitution 2): random critical-cycle tests, filtered to
/// those whose cycle-observing outcome the model forbids, deduplicated
/// canonically.
pub struct DiyBaseline;

impl DiyBaseline {
    /// Generates `attempts` random tests for `model` and keeps the
    /// distinct forbidden ones.
    pub fn generate<M: MemoryModel>(model: &M, attempts: usize) -> Vec<(LitmusTest, Outcome)> {
        let mut local_edges = vec![LocalEdge::Po];
        for &k in model.fence_kinds() {
            local_edges.push(LocalEdge::Fence(k));
        }
        for &d in model.dep_kinds() {
            if d != DepKind::CtrlIsync {
                local_edges.push(LocalEdge::Dep(d));
            }
        }
        // Keep lwsync in only if the model has it.
        local_edges.retain(|e| match e {
            LocalEdge::Fence(FenceKind::Lightweight) => {
                model.fence_kinds().contains(&FenceKind::Lightweight)
            }
            _ => true,
        });
        let cfg = DiyConfig {
            local_edges,
            min_comm: 2,
            max_comm: 3,
        };
        let mut gen = DiyGenerator::new(0xC0FFEE, cfg);
        let mut out: BTreeMap<String, (LitmusTest, Outcome)> = BTreeMap::new();
        for (t, o) in gen.generate(attempts) {
            if oracle::forbidden(model, &t, &o) {
                out.entry(canonical_key_exact(&t, &o)).or_insert((t, o));
            }
        }
        out.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litsynth_models::{Power, Tso};

    #[test]
    fn tso_baseline_contains_forbidden_tests_only() {
        let m = Tso::new();
        let suite = DiyBaseline::generate(&m, 100);
        assert!(!suite.is_empty());
        for (t, o) in &suite {
            assert!(oracle::forbidden(&m, t, o), "{t}");
        }
    }

    #[test]
    fn power_baseline_uses_deps_and_fences() {
        let m = Power::new();
        let suite = DiyBaseline::generate(&m, 200);
        assert!(!suite.is_empty());
        let with_sync = suite
            .iter()
            .any(|(t, _)| (0..t.num_events()).any(|g| t.instr(g).is_fence()));
        let with_deps = suite.iter().any(|(t, _)| !t.deps().is_empty());
        assert!(with_sync, "some baseline test should use a fence");
        assert!(with_deps, "some baseline test should use a dependency");
    }
}
