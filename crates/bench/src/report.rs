//! Report helpers: cumulative union suites and exhaustive ground-truth
//! enumeration for the soundness experiment.

use litsynth_core::{SymbolicTest, SynthConfig};
use litsynth_litmus::{canonical_key_exact, Execution, LitmusTest, Outcome};
use litsynth_models::{MemoryModel, SymAlg};
use litsynth_relalg::{Bit, Finder};
use std::collections::BTreeMap;

/// Synthesizes the union suite over a bound range with a per-query time
/// budget (milliseconds).
pub fn union_suite<M: MemoryModel + Sync>(
    model: &M,
    bounds: std::ops::RangeInclusive<usize>,
    budget_ms: u64,
) -> BTreeMap<String, (LitmusTest, Outcome)> {
    union_suite_parallel(model, bounds, budget_ms, 1, 0)
}

/// [`union_suite`] on the parallel synthesis engine: `threads` workers
/// (0 = all cores), each query cube-split `2^cube_bits` ways. The suite is
/// byte-identical to the sequential one for any setting.
///
/// When `LITSYNTH_RESUME` is set (see [`litsynth_core::env_journal`]),
/// completed queries checkpoint to the journal and a re-run replays them
/// instead of re-solving — still byte-identical, because only exact
/// (non-truncated, non-degraded) queries are ever recorded.
pub fn union_suite_parallel<M: MemoryModel + Sync>(
    model: &M,
    bounds: std::ops::RangeInclusive<usize>,
    budget_ms: u64,
    threads: usize,
    cube_bits: usize,
) -> BTreeMap<String, (LitmusTest, Outcome)> {
    litsynth_core::synthesize_union_up_to(model, bounds, |n| {
        let mut cfg = SynthConfig::new(n);
        cfg.time_budget_ms = budget_ms;
        cfg.threads = threads;
        cfg.cube_bits = cube_bits;
        cfg.journal = litsynth_core::env_journal();
        cfg
    })
}

/// Exhaustively enumerates every well-formed canonical program of exactly
/// `n` events together with every distinct candidate outcome — the ground
/// truth for the soundness experiment. Only viable at small `n`.
pub fn enumerate_all_tests<M: MemoryModel>(model: &M, n: usize) -> Vec<(LitmusTest, Outcome)> {
    let cfg = SynthConfig::new(n);
    let mut alg = SymAlg::new();
    let st = SymbolicTest::build(&mut alg, model, &cfg);
    // Static-only observables: block programs, not executions.
    let mut static_bits: Vec<Bit> = Vec::new();
    for e in 0..st.n {
        static_bits.extend(st.kind[e].iter().copied());
        static_bits.extend(st.thread[e].iter().copied());
        static_bits.extend(st.addr[e].iter().copied());
    }
    for m in st.deps.values() {
        for i in 0..st.n {
            for j in (i + 1)..st.n {
                static_bits.push(m.get(i, j));
            }
        }
    }
    if st.has_rmw {
        for e in 0..st.n.saturating_sub(1) {
            static_bits.push(st.rmw.get(e, e + 1));
        }
    }
    let circuit = alg.into_circuit();
    let mut finder = Finder::new(&circuit);
    let mut programs: BTreeMap<String, LitmusTest> = BTreeMap::new();
    while let Some(inst) = finder.next_instance(&circuit, &st.wellformed) {
        let (test, _) = st.extract(&circuit, &inst);
        programs
            .entry(canonical_key_exact(&test, &Outcome::empty()))
            .or_insert(test);
        finder.block(&circuit, &inst, &static_bits);
    }
    // All candidate outcomes per program.
    let mut out = Vec::new();
    for test in programs.into_values() {
        let mut outcomes: Vec<Outcome> = Execution::enumerate(&test)
            .iter()
            .map(|e| e.outcome())
            .collect();
        outcomes.sort();
        outcomes.dedup();
        for o in outcomes {
            out.push((test.clone(), o));
        }
    }
    out
}

/// Counts well-formed programs by raw SAT enumeration (static bits
/// blocked, no canonical dedup) — the ground truth for
/// `litsynth_core::count_programs`' DP, modulo the synthesizer's extra
/// no-boundary-fence pruning.
pub fn count_programs_sat<M: MemoryModel>(model: &M, n: usize) -> usize {
    let cfg = SynthConfig::new(n);
    let mut alg = SymAlg::new();
    let st = SymbolicTest::build(&mut alg, model, &cfg);
    let mut static_bits: Vec<Bit> = Vec::new();
    for e in 0..st.n {
        static_bits.extend(st.kind[e].iter().copied());
        static_bits.extend(st.thread[e].iter().copied());
        static_bits.extend(st.addr[e].iter().copied());
    }
    for m in st.deps.values() {
        for i in 0..st.n {
            for j in (i + 1)..st.n {
                static_bits.push(m.get(i, j));
            }
        }
    }
    if st.has_rmw {
        for e in 0..st.n.saturating_sub(1) {
            static_bits.push(st.rmw.get(e, e + 1));
        }
    }
    let circuit = alg.into_circuit();
    let mut finder = Finder::new(&circuit);
    let mut count = 0;
    while let Some(inst) = finder.next_instance(&circuit, &st.wellformed) {
        count += 1;
        finder.block(&circuit, &inst, &static_bits);
        assert!(count < 5_000_000, "runaway enumeration");
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use litsynth_models::Sc;

    #[test]
    fn exhaustive_enumeration_bound_2_sc() {
        let all = enumerate_all_tests(&Sc::new(), 2);
        // Programs of 2 events over {Ld,St} with ≤2 addrs and 1–2 threads:
        // a modest, definite number; every (test, outcome) is realizable.
        assert!(!all.is_empty());
        for (t, o) in &all {
            assert_eq!(t.num_events(), 2);
            let ok = Execution::enumerate(t)
                .iter()
                .any(|e| o.matches(&e.outcome()));
            assert!(ok);
        }
        // Distinct canonical programs only.
        let mut keys: Vec<String> = all
            .iter()
            .map(|(t, _)| canonical_key_exact(t, &Outcome::empty()))
            .collect();
        keys.sort();
        keys.dedup();
        assert!(keys.len() >= 6, "saw {} programs", keys.len());
    }

    #[test]
    fn dp_count_matches_sat_enumeration_for_sc() {
        // SC has no fences (so the synthesizer's boundary-fence pruning is
        // vacuous), no deps, no RMW pairs: the closed-form program count
        // must equal raw SAT enumeration exactly.
        let m = Sc::new();
        for n in 1..=3usize {
            let dp = litsynth_core::count_programs(&m, n, n.min(3));
            let sat = count_programs_sat(&m, n) as u128;
            assert_eq!(dp, sat, "n={n}");
        }
    }

    #[test]
    fn dp_count_upper_bounds_sat_enumeration_for_tso() {
        // TSO adds fences, deps are absent, RMW pairs add structure beyond
        // the DP (which counts shapes only) — but boundary-fence pruning
        // also removes programs, so just sanity-check the relationship at
        // n=2: DP counts fence-only programs the synthesizer prunes.
        let m = litsynth_models::Tso::new();
        let dp = litsynth_core::count_programs(&m, 2, 2);
        let sat = count_programs_sat(&m, 2) as u128;
        // With 2 events, any fence is at a boundary; SAT sees none, but
        // gains rmw-pair placements. Both are modest finite numbers.
        assert!(sat > 0 && dp > 0);
        assert!(sat < 200 && dp < 200);
    }

    #[test]
    fn union_suite_accumulates_across_bounds() {
        let m = Sc::new();
        let u2 = union_suite(&m, 2..=2, 30_000);
        let u3 = union_suite(&m, 2..=3, 30_000);
        assert!(u3.len() > u2.len());
        for k in u2.keys() {
            assert!(u3.contains_key(k));
        }
    }
}
