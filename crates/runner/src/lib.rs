//! # litsynth-runner
//!
//! Executes litmus tests as *real concurrent programs* on the host machine,
//! mapping the C11-fragment vocabulary onto Rust's `std::sync::atomic`
//! operations — the downstream half of the paper's pipeline ("these tests
//! can then be fed into any existing testing infrastructure", §1).
//!
//! Each iteration resets the shared locations, releases all threads from a
//! barrier simultaneously (the classic litmus stressor), executes every
//! thread's instructions, and records the observed [`Outcome`](litsynth_litmus::Outcome) (what each
//! read returned, and each location's final value). Histograms over many
//! iterations can then be checked against a model: observing an outcome
//! the model forbids is a (model or toolchain) soundness violation.
//!
//! # Example
//!
//! ```
//! use litsynth_litmus::suites::classics;
//! use litsynth_runner::{run, RunConfig};
//!
//! let (mp, weak) = classics::mp_rel_acq();
//! let report = run(&mp, &RunConfig { iterations: 2_000, ..RunConfig::default() }).unwrap();
//! // Release/acquire MP: the weak outcome must never appear.
//! assert_eq!(report.count_matching(&weak), 0);
//! ```

mod exec;
mod map;

pub use exec::{run, RunConfig, RunError, RunReport};
pub use map::{executability, Unsupported};
