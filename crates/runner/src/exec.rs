//! The concurrent test executor.

use crate::map::{
    executability, fence_ordering, load_ordering, rmw_ordering, store_ordering, Unsupported,
};
use litsynth_litmus::{Addr, Instr, LitmusTest, Outcome};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Barrier;

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Number of iterations (each is one synchronized execution).
    pub iterations: usize,
    /// Upper bound on the random pre-run spin (adds interleaving jitter —
    /// the cheap cousin of the "external stressors" the paper cites).
    pub max_prerun_spin: u32,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            iterations: 10_000,
            max_prerun_spin: 64,
        }
    }
}

/// Why a run could not start.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RunError {
    /// The test uses a feature with no native mapping.
    Unsupported(Unsupported),
    /// The test has no events.
    Empty,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Unsupported(u) => write!(f, "unsupported test: {u}"),
            RunError::Empty => write!(f, "empty test"),
        }
    }
}

impl std::error::Error for RunError {}

/// The observation histogram of a run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Complete outcomes and how often each was observed.
    pub histogram: BTreeMap<Outcome, u64>,
    /// Iterations executed.
    pub iterations: usize,
}

impl RunReport {
    /// Number of iterations whose outcome matches the (possibly partial)
    /// `outcome`.
    pub fn count_matching(&self, outcome: &Outcome) -> u64 {
        self.histogram
            .iter()
            .filter(|(full, _)| outcome.matches(full))
            .map(|(_, &c)| c)
            .sum()
    }

    /// Number of distinct complete outcomes observed.
    pub fn distinct(&self) -> usize {
        self.histogram.len()
    }

    /// Renders the histogram against the test.
    pub fn display(&self, test: &LitmusTest) -> String {
        let mut s = String::new();
        for (o, c) in &self.histogram {
            s.push_str(&format!("{:>9}  {}\n", c, o.display(test)));
        }
        s
    }
}

/// Runs `test` for `cfg.iterations` synchronized iterations.
///
/// # Errors
///
/// Fails fast if the test uses unmappable features (see
/// [`executability`]).
pub fn run(test: &LitmusTest, cfg: &RunConfig) -> Result<RunReport, RunError> {
    executability(test).map_err(RunError::Unsupported)?;
    if test.num_events() == 0 {
        return Err(RunError::Empty);
    }
    let n_threads = test.num_threads();
    let n_addrs = test
        .addresses()
        .iter()
        .map(|a| a.0 as usize + 1)
        .max()
        .unwrap_or(1);
    let locations: Vec<AtomicU32> = (0..n_addrs).map(|_| AtomicU32::new(0)).collect();
    // Per-thread read logs, one slot per instruction (only reads used).
    let logs: Vec<Vec<AtomicU32>> = test
        .threads()
        .iter()
        .map(|t| (0..t.len()).map(|_| AtomicU32::new(0)).collect())
        .collect();
    let start = Barrier::new(n_threads);
    let go = Barrier::new(n_threads);
    let done = Barrier::new(n_threads);

    let mut histogram: BTreeMap<Outcome, u64> = BTreeMap::new();
    {
        let hist = std::sync::Mutex::new(&mut histogram);
        std::thread::scope(|scope| {
            for tid in 0..n_threads {
                let locations = &locations;
                let logs = &logs;
                let start = &start;
                let go = &go;
                let done = &done;
                let hist = &hist;
                let body: Vec<Instr> = test.threads()[tid].clone();
                let cfg = cfg.clone();
                scope.spawn(move || {
                    let mut rng: u32 = 0x9E3779B9u32.wrapping_mul(tid as u32 + 1) | 1;
                    for _ in 0..cfg.iterations {
                        let leading = start.wait().is_leader();
                        if leading {
                            for l in locations {
                                l.store(0, Ordering::Relaxed);
                            }
                        }
                        go.wait();
                        // Jitter.
                        if cfg.max_prerun_spin > 0 {
                            rng ^= rng << 13;
                            rng ^= rng >> 17;
                            rng ^= rng << 5;
                            for _ in 0..(rng % cfg.max_prerun_spin) {
                                std::hint::spin_loop();
                            }
                        }
                        // The test body.
                        for (idx, i) in body.iter().enumerate() {
                            match *i {
                                Instr::Load { addr, order, .. } => {
                                    let v = locations[addr.0 as usize].load(load_ordering(order));
                                    logs[tid][idx].store(v, Ordering::Relaxed);
                                }
                                Instr::Store { addr, order, .. } => {
                                    let gid = test.gid(tid, idx);
                                    locations[addr.0 as usize]
                                        .store(test.write_value(gid), store_ordering(order));
                                }
                                Instr::Rmw { addr, order, .. } => {
                                    let gid = test.gid(tid, idx);
                                    let old = locations[addr.0 as usize]
                                        .swap(test.write_value(gid), rmw_ordering(order));
                                    logs[tid][idx].store(old, Ordering::Relaxed);
                                }
                                Instr::Fence { kind, .. } => {
                                    std::sync::atomic::fence(fence_ordering(kind));
                                }
                            }
                        }
                        let fin = done.wait();
                        if fin.is_leader() {
                            let outcome = collect_outcome(test, locations, logs);
                            // Lock ignoring poison: a panicking sibling
                            // must not discard the iterations already
                            // recorded while this scope unwinds.
                            *hist
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .entry(outcome)
                                .or_insert(0) += 1;
                        }
                    }
                });
            }
        });
    }
    Ok(RunReport {
        histogram,
        iterations: cfg.iterations,
    })
}

fn collect_outcome(test: &LitmusTest, locations: &[AtomicU32], logs: &[Vec<AtomicU32>]) -> Outcome {
    let mut rf = BTreeMap::new();
    for &r in &test.reads() {
        let tid = test.thread_of(r);
        let idx = test.index_of(r);
        let v = logs[tid][idx].load(Ordering::Relaxed);
        let addr = test.instr(r).addr().expect("reads have addresses");
        let src = if v == 0 {
            None
        } else {
            Some(test.write_with_value(addr, v))
        };
        rf.insert(r, src);
    }
    let mut finals = BTreeMap::new();
    for a in test.addresses() {
        let ws = test.writes_to(a);
        if ws.is_empty() {
            continue;
        }
        let v = locations[a.0 as usize].load(Ordering::Relaxed);
        debug_assert!(v > 0, "a written location cannot finish at 0");
        finals.insert(Addr(a.0), test.write_with_value(a, v));
    }
    Outcome { rf, finals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litsynth_litmus::suites::classics;
    use litsynth_litmus::MemOrder;
    use litsynth_models::{oracle, C11};

    fn quick(iterations: usize) -> RunConfig {
        RunConfig {
            iterations,
            max_prerun_spin: 32,
        }
    }

    #[test]
    fn mp_rel_acq_never_shows_the_weak_outcome() {
        let (t, weak) = classics::mp_rel_acq();
        let r = run(&t, &quick(20_000)).unwrap();
        assert_eq!(r.count_matching(&weak), 0, "{}", r.display(&t));
        // Counts add up.
        let total: u64 = r.histogram.values().sum();
        assert_eq!(total, 20_000);
    }

    #[test]
    fn sb_with_sc_accesses_never_shows_both_zero() {
        let t = litsynth_litmus::LitmusTest::new(
            "SB+scs",
            vec![
                vec![
                    Instr::store_ord(0, MemOrder::SeqCst),
                    Instr::load_ord(1, MemOrder::SeqCst),
                ],
                vec![
                    Instr::store_ord(1, MemOrder::SeqCst),
                    Instr::load_ord(0, MemOrder::SeqCst),
                ],
            ],
        );
        let weak = classics::oc([(1, None), (3, None)], []);
        let r = run(&t, &quick(20_000)).unwrap();
        assert_eq!(r.count_matching(&weak), 0, "{}", r.display(&t));
    }

    #[test]
    fn rmw_atomicity_holds_natively() {
        // Two competing swaps can never both read the initial value.
        let (t, violation) = classics::rmw_rmw();
        let r = run(&t, &quick(20_000)).unwrap();
        assert_eq!(r.count_matching(&violation), 0, "{}", r.display(&t));
    }

    #[test]
    fn coherence_holds_natively() {
        let (t, violation) = classics::coww();
        let r = run(&t, &quick(5_000)).unwrap();
        assert_eq!(r.count_matching(&violation), 0);
    }

    #[test]
    fn every_observed_outcome_is_c11_observable() {
        // The C11 fragment must be weaker than (or equal to) whatever the
        // host toolchain+hardware produce: nothing observed may be
        // model-forbidden. This differentially tests the model against
        // reality.
        let m = C11::new();
        for (t, _) in [
            classics::mp(),
            classics::sb(),
            classics::mp_rel_acq(),
            classics::iriw(),
        ] {
            let r = run(&t, &quick(5_000)).unwrap();
            for o in r.histogram.keys() {
                assert!(
                    oracle::observable(&m, &t, o),
                    "{}: observed outcome {} is C11-forbidden!",
                    t.name(),
                    o.display(&t)
                );
            }
        }
    }

    #[test]
    fn unsupported_tests_are_rejected() {
        let (t, _) = classics::lb_addrs();
        assert!(matches!(run(&t, &quick(10)), Err(RunError::Unsupported(_))));
    }

    #[test]
    fn histogram_is_deterministically_complete_for_single_thread() {
        let (t, _) = classics::coww();
        let r = run(&t, &quick(100)).unwrap();
        // One thread ⇒ exactly one possible outcome.
        assert_eq!(r.distinct(), 1);
        let (o, &c) = r.histogram.iter().next().unwrap();
        assert_eq!(c, 100);
        // The final value is the program-order-last write.
        assert_eq!(o.finals[&Addr(0)], 1);
    }
}
