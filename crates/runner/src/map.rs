//! Mapping litmus vocabulary onto Rust atomics, and the executability
//! check.

use litsynth_litmus::{FenceKind, Instr, LitmusTest, MemOrder};
use std::sync::atomic::Ordering;

/// Why a test cannot be executed natively.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Unsupported {
    /// Explicit dependency edges cannot be enforced from safe Rust (the
    /// compiler is free to break syntactic dependencies).
    Dependencies,
    /// Two-instruction RMW pairs (LL/SC) have no Rust equivalent; use
    /// single-instruction RMWs instead.
    RmwPairs,
    /// `lwsync` has no Rust mapping (Rust exposes the C11 fence ladder).
    LightweightFence,
    /// `memory_order_consume` is not exposed by Rust.
    Consume,
}

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Unsupported::Dependencies => write!(f, "dependency edges are not enforceable"),
            Unsupported::RmwPairs => write!(f, "LL/SC pairs are not expressible"),
            Unsupported::LightweightFence => write!(f, "lwsync has no Rust mapping"),
            Unsupported::Consume => write!(f, "consume ordering is not exposed"),
        }
    }
}

/// Checks that every feature of `test` maps onto Rust atomics.
///
/// # Errors
///
/// Returns the first unsupported feature.
pub fn executability(test: &LitmusTest) -> Result<(), Unsupported> {
    if !test.deps().is_empty() {
        return Err(Unsupported::Dependencies);
    }
    if !test.rmw_pairs().is_empty() {
        return Err(Unsupported::RmwPairs);
    }
    for g in 0..test.num_events() {
        match test.instr(g) {
            Instr::Fence {
                kind: FenceKind::Lightweight,
                ..
            } => return Err(Unsupported::LightweightFence),
            i => {
                if i.order() == Some(MemOrder::Consume) {
                    return Err(Unsupported::Consume);
                }
            }
        }
    }
    Ok(())
}

/// Rust ordering for a load.
pub(crate) fn load_ordering(o: MemOrder) -> Ordering {
    match o {
        MemOrder::Relaxed => Ordering::Relaxed,
        MemOrder::Acquire | MemOrder::AcqRel => Ordering::Acquire,
        MemOrder::SeqCst => Ordering::SeqCst,
        // Release on a load / consume are rejected by `executability` or
        // never constructed; degrade safely.
        MemOrder::Release | MemOrder::Consume => Ordering::Relaxed,
    }
}

/// Rust ordering for a store.
pub(crate) fn store_ordering(o: MemOrder) -> Ordering {
    match o {
        MemOrder::Relaxed => Ordering::Relaxed,
        MemOrder::Release | MemOrder::AcqRel => Ordering::Release,
        MemOrder::SeqCst => Ordering::SeqCst,
        MemOrder::Acquire | MemOrder::Consume => Ordering::Relaxed,
    }
}

/// Rust ordering for a single-instruction RMW (`swap`).
pub(crate) fn rmw_ordering(o: MemOrder) -> Ordering {
    match o {
        MemOrder::Relaxed => Ordering::Relaxed,
        MemOrder::Acquire => Ordering::Acquire,
        MemOrder::Release => Ordering::Release,
        MemOrder::AcqRel => Ordering::AcqRel,
        MemOrder::SeqCst => Ordering::SeqCst,
        MemOrder::Consume => Ordering::Relaxed,
    }
}

/// Rust ordering for a fence.
pub(crate) fn fence_ordering(k: FenceKind) -> Ordering {
    match k {
        FenceKind::Full => Ordering::SeqCst,
        FenceKind::AcqRel => Ordering::AcqRel,
        FenceKind::Acquire => Ordering::Acquire,
        FenceKind::Release => Ordering::Release,
        // Rejected by `executability`.
        FenceKind::Lightweight => Ordering::SeqCst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litsynth_litmus::suites::classics;
    use litsynth_litmus::{DepKind, LitmusTest};

    #[test]
    fn classics_are_executable() {
        for (t, _) in [
            classics::mp(),
            classics::mp_rel_acq(),
            classics::sb_fences(),
            classics::iriw(),
            classics::rmw_rmw(),
        ] {
            assert_eq!(executability(&t), Ok(()), "{}", t.name());
        }
    }

    #[test]
    fn unsupported_features_are_rejected() {
        let (t, _) = classics::lb_addrs();
        assert_eq!(executability(&t), Err(Unsupported::Dependencies));

        let t = LitmusTest::new("pair", vec![vec![Instr::load(0), Instr::store(0)]])
            .with_rmw_pair(0, 0);
        assert_eq!(executability(&t), Err(Unsupported::RmwPairs));

        let t = LitmusTest::new(
            "lw",
            vec![vec![
                Instr::store(0),
                Instr::fence(FenceKind::Lightweight),
                Instr::store(1),
            ]],
        );
        assert_eq!(executability(&t), Err(Unsupported::LightweightFence));

        let t = LitmusTest::new("cons", vec![vec![Instr::load_ord(0, MemOrder::Consume)]]);
        assert_eq!(executability(&t), Err(Unsupported::Consume));
        let _ = DepKind::Addr;
    }

    #[test]
    fn ordering_maps() {
        assert_eq!(load_ordering(MemOrder::Acquire), Ordering::Acquire);
        assert_eq!(store_ordering(MemOrder::Release), Ordering::Release);
        assert_eq!(rmw_ordering(MemOrder::AcqRel), Ordering::AcqRel);
        assert_eq!(fence_ordering(FenceKind::Full), Ordering::SeqCst);
        assert_eq!(load_ordering(MemOrder::SeqCst), Ordering::SeqCst);
    }
}
