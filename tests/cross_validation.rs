//! Cross-validation between the two independent semantics paths:
//!
//! * the SAT-based synthesis (Figure 5c encoding over symbolic contexts),
//! * the explicit-enumeration oracle (exact exists-forall semantics).
//!
//! Everything the synthesizer emits must be exactly minimal; everything
//! exactly minimal at small bounds must be found. This is the strongest
//! whole-stack test in the repository: it exercises the SAT solver, the
//! circuit compiler, the model encodings (twice), the perturbations, the
//! relaxations, and the canonicalizers together.

use litsynth_bench::report::enumerate_all_tests;
use litsynth_core::{check_minimal, minimal_for_some_axiom, synthesize_axiom, SynthConfig};
use litsynth_litmus::canonical_key_exact;
use litsynth_models::{MemoryModel, Power, Sc, Scc, Tso, C11};
use std::collections::BTreeMap;

/// The one documented escape hatch (§4.2): with three or more writes to a
/// single address, the coherence order is not recoverable from the
/// observable outcome (rf + finals), so the Figure 5c instance may pick a
/// `co` the outcome does not pin — a harmless false positive the paper
/// accepts ("a few cycles wasted running a test which is not quite
/// technically minimal").
fn co_is_ambiguous(t: &litsynth_litmus::LitmusTest) -> bool {
    t.addresses().iter().any(|&a| t.writes_to(a).len() >= 3)
}

fn synthesized_is_oracle_minimal<M: MemoryModel + Sync>(model: &M, bounds: &[usize]) {
    for &n in bounds {
        let cfg = SynthConfig::new(n);
        for ax in model.axioms() {
            let r = synthesize_axiom(model, ax, &cfg);
            for (t, o) in r.tests.values() {
                let v = check_minimal(model, ax, t, o);
                assert!(
                    v.is_minimal() || co_is_ambiguous(t),
                    "{} {ax} bound {n}: {t} {} → {v:?}",
                    model.name(),
                    o.display(t)
                );
            }
        }
    }
}

#[test]
fn tso_synthesized_tests_are_exactly_minimal() {
    synthesized_is_oracle_minimal(&Tso::new(), &[2, 3, 4]);
}

#[test]
fn sc_synthesized_tests_are_exactly_minimal() {
    synthesized_is_oracle_minimal(&Sc::new(), &[2, 3, 4]);
}

#[test]
fn scc_synthesized_tests_are_exactly_minimal() {
    synthesized_is_oracle_minimal(&Scc::new(), &[3, 4]);
}

#[test]
fn power_synthesized_tests_are_exactly_minimal() {
    synthesized_is_oracle_minimal(&Power::new(), &[3, 4]);
}

#[test]
fn c11_synthesized_tests_are_exactly_minimal() {
    synthesized_is_oracle_minimal(&C11::new(), &[3]);
}

/// Completeness at small bounds: exhaustive ground truth equals synthesis.
#[test]
fn tso_completeness_bound_3() {
    let tso = Tso::new();
    for ax in tso.axioms() {
        let mut synth: BTreeMap<String, _> = BTreeMap::new();
        for n in 2..=3 {
            synth.extend(synthesize_axiom(&tso, ax, &SynthConfig::new(n)).tests);
        }
        for n in 2..=3usize {
            for (t, o) in enumerate_all_tests(&tso, n) {
                if check_minimal(&tso, ax, &t, &o).is_minimal() {
                    let key = canonical_key_exact(&t, &o);
                    assert!(
                        synth.contains_key(&key),
                        "{ax}: exact-minimal test missed by synthesis: {t} {}",
                        o.display(&t)
                    );
                }
            }
        }
    }
}

/// Same for SC, whose axioms have no auxiliary relations at all.
#[test]
fn sc_completeness_bound_3() {
    let sc = Sc::new();
    let mut synth: BTreeMap<String, _> = BTreeMap::new();
    for n in 2..=3 {
        for ax in sc.axioms() {
            synth.extend(synthesize_axiom(&sc, ax, &SynthConfig::new(n)).tests);
        }
    }
    for n in 2..=3usize {
        for (t, o) in enumerate_all_tests(&sc, n) {
            if minimal_for_some_axiom(&sc, &t, &o) {
                let key = canonical_key_exact(&t, &o);
                assert!(
                    synth.contains_key(&key),
                    "exact-minimal test missed: {t} {}",
                    o.display(&t)
                );
            }
        }
    }
}

/// The per-axiom suites overlap but are not nested (§6.1: "six overlap").
#[test]
fn tso_axiom_suites_overlap_partially() {
    let tso = Tso::new();
    let mut scl: BTreeMap<String, _> = BTreeMap::new();
    let mut caus: BTreeMap<String, _> = BTreeMap::new();
    for n in 2..=4 {
        scl.extend(synthesize_axiom(&tso, "sc_per_loc", &SynthConfig::new(n)).tests);
        caus.extend(synthesize_axiom(&tso, "causality", &SynthConfig::new(n)).tests);
    }
    let overlap = scl.keys().filter(|k| caus.contains_key(*k)).count();
    assert!(overlap > 0, "some coherence tests also stress causality");
    assert!(overlap < scl.len(), "but not all (Figure 11)");
    assert!(overlap < caus.len());
}
