//! Every litmus-test fact the paper states in its figures, checked
//! end-to-end against the models and the minimality machinery.

use litsynth_core::{applications, apply, check_minimal, Application};
use litsynth_litmus::suites::classics;
use litsynth_litmus::{FenceKind, Instr, LitmusTest, MemOrder};
use litsynth_models::{oracle, MemoryModel, Scc, Tso, C11};

/// Figure 1: MP with release/acquire — three legal outcomes, one illegal.
#[test]
fn figure_1_mp_outcomes() {
    let scc = Scc::new();
    let (t, illegal) = classics::mp_rel_acq();
    assert!(oracle::forbidden(&scc, &t, &illegal));
    // The three legal outcomes: (0,0), (0,1), (1,1).
    for (ry, rx) in [(None, None), (None, Some(0)), (Some(1), Some(0))] {
        let o = classics::oc([(2, ry), (3, rx)], []);
        assert!(
            oracle::observable(&scc, &t, &o),
            "({ry:?},{rx:?}) must be legal"
        );
    }
}

/// Figure 2: the doubly-synchronized MP forbids nothing more than Figure 1.
#[test]
fn figure_2_extra_synchronization_changes_nothing() {
    let scc = Scc::new();
    let (t1, o1) = classics::mp_rel_acq();
    let (t2, o2) = classics::mp_rel2_acq2();
    assert_eq!(
        oracle::forbidden(&scc, &t1, &o1),
        oracle::forbidden(&scc, &t2, &o2)
    );
    // …and is therefore redundant: not minimal (§3).
    assert!(check_minimal(&scc, "causality", &t1, &o1).is_minimal());
    assert!(!check_minimal(&scc, "causality", &t2, &o2).is_minimal());
}

/// Figure 3: applying RI to each MP instruction exposes the outcome.
#[test]
fn figure_3_ri_walkthrough() {
    let tso = Tso::new();
    let (mp, weak) = classics::mp();
    assert!(oracle::forbidden(&tso, &mp, &weak));
    for gid in 0..mp.num_events() {
        let (relaxed, projected) = apply(&mp, &weak, Application::Ri { gid });
        assert!(
            oracle::observable(&tso, &relaxed, &projected),
            "RI@{gid} must expose the residual outcome (Figure 3)"
        );
    }
}

/// Figure 7: CoRW's legal/illegal outcome table.
#[test]
fn figure_7_corw_outcome_table() {
    let tso = Tso::new();
    let (t, _) = classics::corw();
    // Writes to x: gid1 (value 1, T0's), gid2 (value 2, T1's).
    // Legal: (r=0,x=1), (r=0,x=2), (r=2,x=1).
    for (r, fin) in [(None, 1), (None, 2), (Some(2), 1)] {
        let o = classics::oc([(0, r)], [(0, fin)]);
        assert!(oracle::observable(&tso, &t, &o), "({r:?}, x={fin}) legal");
    }
    // Illegal: (r=1,x=1), (r=1,x=2), (r=2,x=2).
    for (r, fin) in [(Some(1), 1), (Some(1), 2), (Some(2), 2)] {
        let o = classics::oc([(0, r)], [(0, fin)]);
        assert!(oracle::forbidden(&tso, &t, &o), "({r:?}, x={fin}) illegal");
    }
    // And CoRW is minimal for sc_per_loc (the Figure 7 discussion).
    let (t, o) = classics::corw();
    assert!(check_minimal(&tso, "sc_per_loc", &t, &o).is_minimal());
}

/// Figure 10: n5/CoLB is forbidden but not minimal — it contains CoRW.
#[test]
fn figure_10_colb_subsumption() {
    let tso = Tso::new();
    let (colb, o) = classics::colb();
    assert!(oracle::forbidden(&tso, &colb, &o));
    assert!(!check_minimal(&tso, "sc_per_loc", &colb, &o).is_minimal());
    let (corw, _) = classics::corw();
    assert!(litsynth_core::contains_subtest(&tso, &colb, &corw));
}

/// Figure 18: SB with FenceSC fences is forbidden under SCC, and stays
/// forbidden for either orientation of the `sc` edge.
#[test]
fn figure_18_sb_fencesc() {
    let scc = Scc::new();
    let (t, o) = classics::sb_fences();
    assert!(oracle::forbidden(&scc, &t, &o));
    // Every relaxation exposes it — SB+FenceSCs satisfies the criterion
    // under the *exact* semantics (the Figure 5c issue is an encoding
    // artifact the Figure 19 workaround repairs).
    assert!(check_minimal(&scc, "causality", &t, &o).is_minimal());
}

/// Table 1: the C/C++ memory-order ladder drives DMO.
#[test]
fn table_1_dmo_ladder() {
    let c11 = C11::new();
    let sc_load = Instr::load_ord(0, MemOrder::SeqCst);
    assert_eq!(c11.order_demotions(sc_load), vec![MemOrder::Acquire]);
    let acq_load = Instr::load_ord(0, MemOrder::Acquire);
    assert_eq!(c11.order_demotions(acq_load), vec![MemOrder::Relaxed]);
    let sc_store = Instr::store_ord(0, MemOrder::SeqCst);
    assert_eq!(c11.order_demotions(sc_store), vec![MemOrder::Release]);
}

/// §3.2 DRMW: decomposing an RMW keeps po_loc and the data dependency.
#[test]
fn drmw_keeps_po_loc_and_data() {
    let tso = Tso::new();
    let (t, o) = classics::rmw_st();
    let apps = applications(&tso, &t);
    let drmw = apps
        .iter()
        .find(|a| matches!(a, Application::Drmw { .. }))
        .expect("RMW admits DRMW");
    let (t2, o2) = apply(&t, &o, *drmw);
    // Load and store halves target the same address, adjacent in po.
    assert_eq!(t2.instr(0).addr(), t2.instr(1).addr());
    assert!(t2.po_loc().contains(0, 1));
    assert_eq!(t2.deps().len(), 1);
    // The decomposed test makes the outcome observable (atomicity is gone).
    assert!(oracle::observable(&tso, &t2, &o2));
}

/// §6.2 PPOAA: forbidden with sync, still forbidden with only lwsync — so
/// the Cambridge presentation (with sync) is not minimal.
#[test]
fn ppoaa_needs_only_lwsync() {
    use litsynth_litmus::DepKind;
    let power = litsynth_models::Power::new();
    let mk = |fence: FenceKind| {
        LitmusTest::new(
            "PPOAA",
            vec![
                vec![Instr::store(2), Instr::fence(fence), Instr::store(1)],
                vec![
                    Instr::load(1),
                    Instr::store(0),
                    Instr::load(0),
                    Instr::load(2),
                ],
            ],
        )
        .with_dep(1, 0, 1, DepKind::Addr)
        .with_dep(1, 2, 3, DepKind::Addr)
    };
    let o = classics::oc([(3, Some(2)), (5, Some(4)), (6, None)], []);
    assert!(oracle::forbidden(&power, &mk(FenceKind::Full), &o));
    assert!(
        oracle::forbidden(&power, &mk(FenceKind::Lightweight), &o),
        "lwsync is already enough (§6.2)"
    );
    // Hence PPOAA-with-sync fails the minimality criterion via DF.
    let (t, o2) = (mk(FenceKind::Full), o);
    let v = check_minimal(&power, "observation", &t, &o2);
    assert!(!v.is_minimal(), "{v:?}");
}
