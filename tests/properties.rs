//! Property-based tests over randomly generated litmus tests, relations,
//! and CNF formulas.
//!
//! The cases are driven by the in-tree [`SplitMix64`] PRNG with fixed
//! seeds, so every run checks the identical case set (no external
//! property-testing dependency, no flaky shrink phase).

use litsynth_core::{applications, apply};
use litsynth_litmus::{
    apply_thread_order, canonical_key_exact, Execution, Instr, LitmusTest, Outcome, Rel, SplitMix64,
};
use litsynth_models::{oracle, Power, Sc, Tso};

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// A random relaxed instruction (load/store over ≤3 addresses, or a full
/// fence).
fn gen_instr(rng: &mut SplitMix64, allow_fence: bool) -> Instr {
    let upper = if allow_fence { 7 } else { 5 };
    match rng.range(0, upper) as u8 {
        k @ 0..=2 => Instr::load(k),
        k @ 3..=5 => Instr::store(k - 3),
        _ => Instr::fence(litsynth_litmus::FenceKind::Full),
    }
}

/// A random multi-threaded program: 1–3 threads of 1–3 events each.
fn gen_test(rng: &mut SplitMix64, allow_fence: bool) -> LitmusTest {
    let threads: Vec<Vec<Instr>> = (0..rng.range(1, 3))
        .map(|_| {
            (0..rng.range(1, 3))
                .map(|_| gen_instr(rng, allow_fence))
                .collect()
        })
        .collect();
    LitmusTest::new("prop", threads)
}

/// A random (program, complete outcome) pair: the outcome of a random
/// candidate execution.
fn gen_test_outcome(rng: &mut SplitMix64, allow_fence: bool) -> (LitmusTest, Outcome) {
    let t = gen_test(rng, allow_fence);
    let execs = Execution::enumerate(&t);
    let o = execs[rng.below(execs.len())].outcome();
    (t, o)
}

/// A random relation on `n` atoms with up to `2n` pairs.
fn gen_rel(rng: &mut SplitMix64, n: usize) -> Rel {
    let pairs: Vec<(usize, usize)> = (0..rng.below(n * 2 + 1))
        .map(|_| (rng.below(n), rng.below(n)))
        .collect();
    Rel::from_pairs(n, pairs)
}

// ---------------------------------------------------------------------
// Canonicalization properties
// ---------------------------------------------------------------------

/// The exact canonical key is invariant under thread permutation.
#[test]
fn exact_canonical_key_thread_invariant() {
    let mut rng = SplitMix64::new(0x7001);
    for _ in 0..64 {
        let (t, o) = gen_test_outcome(&mut rng, true);
        let base = canonical_key_exact(&t, &o);
        let mut order: Vec<usize> = (0..t.num_threads()).collect();
        rng.shuffle(&mut order);
        let (t2, o2) = apply_thread_order(&t, &o, &order);
        assert_eq!(canonical_key_exact(&t2, &o2), base, "{t} under {order:?}");
    }
}

/// Canonicalization never changes legality: a model's verdict on the
/// canonical form equals its verdict on the original.
#[test]
fn canonicalization_preserves_legality() {
    let mut rng = SplitMix64::new(0x7002);
    let tso = Tso::new();
    for _ in 0..64 {
        let (t, o) = gen_test_outcome(&mut rng, true);
        let before = oracle::observable(&tso, &t, &o);
        let (_, ct, co) = litsynth_litmus::canonicalize_exact(&t, &o);
        let after = oracle::observable(&tso, &ct, &co);
        assert_eq!(before, after, "{t}");
    }
}

// ---------------------------------------------------------------------
// Relaxation properties
// ---------------------------------------------------------------------

/// Weakening monotonicity: relaxing a test never *un*-observes an
/// outcome — every relaxation application preserves observability.
#[test]
fn relaxations_preserve_observability() {
    let mut rng = SplitMix64::new(0x7003);
    let tso = Tso::new();
    for _ in 0..48 {
        let (t, o) = gen_test_outcome(&mut rng, true);
        if oracle::observable(&tso, &t, &o) {
            for app in applications(&tso, &t) {
                let (t2, o2) = apply(&t, &o, app);
                assert!(
                    oracle::observable(&tso, &t2, &o2),
                    "{} un-observed by {}",
                    t,
                    app.describe()
                );
            }
        }
    }
}

/// Model strength chain on the common vocabulary (no deps, no RMWs):
/// SC-observable ⊆ TSO-observable ⊆ Power-observable.
#[test]
fn model_strength_chain() {
    let mut rng = SplitMix64::new(0x7004);
    let sc = Sc::new();
    let tso = Tso::new();
    let power = Power::new();
    for _ in 0..48 {
        let (t, o) = gen_test_outcome(&mut rng, true);
        if oracle::observable(&sc, &t, &o) {
            assert!(oracle::observable(&tso, &t, &o), "SC ⊆ TSO on {}", t);
        }
        if oracle::observable(&tso, &t, &o) {
            assert!(oracle::observable(&power, &t, &o), "TSO ⊆ Power on {}", t);
        }
    }
}

/// Every candidate execution's outcome is either observable or
/// forbidden — and `forbidden` is the exact complement.
#[test]
fn forbidden_is_complement_of_observable() {
    let mut rng = SplitMix64::new(0x7005);
    let tso = Tso::new();
    for _ in 0..48 {
        let (t, o) = gen_test_outcome(&mut rng, true);
        assert_eq!(
            oracle::forbidden(&tso, &t, &o),
            !oracle::observable(&tso, &t, &o),
            "{t}"
        );
    }
}

// ---------------------------------------------------------------------
// Concrete relation algebra properties
// ---------------------------------------------------------------------

#[test]
fn compose_is_associative() {
    let mut rng = SplitMix64::new(0x7006);
    for _ in 0..128 {
        let a = gen_rel(&mut rng, 5);
        let b = gen_rel(&mut rng, 5);
        let c = gen_rel(&mut rng, 5);
        assert_eq!(a.compose(&b).compose(&c), a.compose(&b.compose(&c)));
    }
}

#[test]
fn closure_is_idempotent() {
    let mut rng = SplitMix64::new(0x7007);
    for _ in 0..128 {
        let a = gen_rel(&mut rng, 6);
        let tc = a.transitive_closure();
        assert_eq!(tc.transitive_closure(), tc.clone());
        // And the closure is transitive by definition.
        assert!(tc.compose(&tc).is_subset(&tc));
    }
}

#[test]
fn transpose_is_involutive() {
    let mut rng = SplitMix64::new(0x7008);
    for _ in 0..128 {
        let a = gen_rel(&mut rng, 6);
        assert_eq!(a.transpose().transpose(), a);
    }
}

#[test]
fn de_morgan_for_union_intersection() {
    let mut rng = SplitMix64::new(0x7009);
    for _ in 0..128 {
        let a = gen_rel(&mut rng, 5);
        let b = gen_rel(&mut rng, 5);
        // (a ∪ b)ᵀ = aᵀ ∪ bᵀ and (a ∩ b)ᵀ = aᵀ ∩ bᵀ.
        assert_eq!(a.union(&b).transpose(), a.transpose().union(&b.transpose()));
        assert_eq!(
            a.intersect(&b).transpose(),
            a.transpose().intersect(&b.transpose())
        );
    }
}

#[test]
fn acyclic_iff_no_self_reachability() {
    let mut rng = SplitMix64::new(0x700A);
    for _ in 0..128 {
        let a = gen_rel(&mut rng, 6);
        let tc = a.transitive_closure();
        let has_loop = (0..6).any(|i| tc.contains(i, i));
        assert_eq!(a.is_acyclic(), !has_loop);
    }
}

#[test]
fn permutation_preserves_execution_count() {
    let mut rng = SplitMix64::new(0x700B);
    for _ in 0..128 {
        // The candidate-execution count is invariant under thread renaming.
        let threads: Vec<Vec<Instr>> = (0..rng.range(1, 3))
            .map(|_| {
                (0..rng.range(1, 2))
                    .map(|_| gen_instr(&mut rng, false))
                    .collect()
            })
            .collect();
        let t = LitmusTest::new("p", threads);
        let count = Execution::enumerate(&t).len();
        let order: Vec<usize> = (0..t.num_threads()).rev().collect();
        let (t2, _) = apply_thread_order(&t, &Outcome::empty(), &order);
        assert_eq!(Execution::enumerate(&t2).len(), count);
    }
}

// ---------------------------------------------------------------------
// SAT solver properties (via the DIMACS layer)
// ---------------------------------------------------------------------

/// A random CNF: `max_clauses` clauses of 1–3 literals over `vars` vars.
fn gen_cnf(rng: &mut SplitMix64, vars: usize, max_clauses: usize) -> Vec<Vec<(usize, bool)>> {
    (0..rng.range(1, max_clauses))
        .map(|_| {
            (0..rng.range(1, 3))
                .map(|_| (rng.below(vars), rng.bool()))
                .collect()
        })
        .collect()
}

/// CDCL agrees with brute force on random small CNFs.
#[test]
fn solver_matches_brute_force() {
    use litsynth_sat::{Lit, Solver, Var};
    let mut rng = SplitMix64::new(0x700C);
    for _ in 0..96 {
        let clauses = gen_cnf(&mut rng, 6, 24);
        let brute = (0u32..64).any(|m| {
            clauses
                .iter()
                .all(|c| c.iter().any(|&(v, pos)| ((m >> v) & 1 == 1) == pos))
        });
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..6).map(|_| s.new_var()).collect();
        for c in &clauses {
            s.add_clause(c.iter().map(|&(v, pos)| Lit::new(vars[v], pos)));
        }
        assert_eq!(s.solve().is_sat(), brute, "{clauses:?}");
    }
}

/// DIMACS round-trips preserve satisfiability.
#[test]
fn dimacs_roundtrip_preserves_sat() {
    use litsynth_sat::dimacs::Cnf;
    use litsynth_sat::{Lit, Var};
    let mut rng = SplitMix64::new(0x700D);
    for _ in 0..96 {
        let clauses = gen_cnf(&mut rng, 5, 16);
        let mut cnf = Cnf::new();
        for c in &clauses {
            cnf.add_clause(c.iter().map(|&(v, pos)| Lit::new(Var::from_index(v), pos)));
        }
        let text = cnf.to_dimacs();
        let back = Cnf::parse_dimacs(&text).unwrap();
        let a = cnf.into_solver().solve().is_sat();
        let b = back.into_solver().solve().is_sat();
        assert_eq!(a, b, "{clauses:?}");
    }
}

// ---------------------------------------------------------------------
// Model differential: symbolic vs concrete evaluation
// ---------------------------------------------------------------------

/// Builds a symbolic context whose every bit is the *constant* matching a
/// concrete execution, evaluates an axiom through `SymAlg`, and compares
/// with `ConcreteAlg`. Because the models are generic over the algebra,
/// this checks the two instantiations agree gate-for-gate.
fn symbolic_equals_concrete<M: litsynth_models::MemoryModel>(
    model: &M,
    t: &LitmusTest,
    e: &Execution,
) -> bool {
    use litsynth_models::{concrete_ctx, ConcreteAlg, Ctx, SymAlg};
    use litsynth_relalg::{Circuit, Matrix1, Matrix2};

    let cctx = concrete_ctx(t, e, &[]);
    let n = t.num_events();
    let lift_set = |s: &litsynth_models::CSet| {
        Matrix1::from_bits(
            (0..n)
                .map(|i| {
                    if s.mask >> i & 1 == 1 {
                        Circuit::TRUE
                    } else {
                        Circuit::FALSE
                    }
                })
                .collect(),
        )
    };
    let lift_rel = |r: &Rel| {
        let mut m = Matrix2::empty(n, n);
        for (i, j) in r.pairs() {
            m.set(i, j, Circuit::TRUE);
        }
        m
    };
    let sctx = Ctx::<SymAlg> {
        n,
        read: lift_set(&cctx.read),
        write: lift_set(&cctx.write),
        fence_full: lift_set(&cctx.fence_full),
        fence_lw: lift_set(&cctx.fence_lw),
        fence_acqrel: lift_set(&cctx.fence_acqrel),
        fence_acq: lift_set(&cctx.fence_acq),
        fence_rel: lift_set(&cctx.fence_rel),
        acquire: lift_set(&cctx.acquire),
        release: lift_set(&cctx.release),
        seqcst: lift_set(&cctx.seqcst),
        consume: lift_set(&cctx.consume),
        po: lift_rel(&cctx.po),
        loc: lift_rel(&cctx.loc),
        rf: lift_rel(&cctx.rf),
        co: lift_rel(&cctx.co),
        addr_dep: lift_rel(&cctx.addr_dep),
        data_dep: lift_rel(&cctx.data_dep),
        ctrl_dep: lift_rel(&cctx.ctrl_dep),
        ctrlisync_dep: lift_rel(&cctx.ctrlisync_dep),
        rmw: lift_rel(&cctx.rmw),
        sc: lift_rel(&cctx.sc),
        int: lift_rel(&cctx.int),
        ext: lift_rel(&cctx.ext),
        orphan: lift_set(&cctx.orphan),
    };
    let mut calg = litsynth_models::ConcreteAlg;
    let _: ConcreteAlg = calg;
    let mut salg = SymAlg::new();
    model.axioms().iter().all(|ax| {
        let want = model.axiom(&mut calg, &cctx, ax);
        let bit = model.axiom(&mut salg, &sctx, ax);
        // Constant inputs fold to constants.
        bit == if want { Circuit::TRUE } else { Circuit::FALSE }
    })
}

/// For random tests and executions, every model's axioms evaluate the
/// same through both algebra instantiations.
#[test]
fn models_agree_symbolically_and_concretely() {
    let mut rng = SplitMix64::new(0x700E);
    for _ in 0..32 {
        let t = gen_test(&mut rng, true);
        let execs = Execution::enumerate(&t);
        let e = &execs[rng.below(execs.len())];
        assert!(symbolic_equals_concrete(&Sc::new(), &t, e), "SC on {t}");
        assert!(symbolic_equals_concrete(&Tso::new(), &t, e), "TSO on {t}");
        assert!(
            symbolic_equals_concrete(&Power::new(), &t, e),
            "Power on {t}"
        );
        assert!(
            symbolic_equals_concrete(&litsynth_models::Power::armv7(), &t, e),
            "ARMv7 on {t}"
        );
        assert!(
            symbolic_equals_concrete(&litsynth_models::C11::new(), &t, e),
            "C11 on {t}"
        );
    }
}
