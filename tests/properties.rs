//! Property-based tests over randomly generated litmus tests, relations,
//! and CNF formulas.

use litsynth_core::{applications, apply};
use litsynth_litmus::{
    apply_thread_order, canonical_key_exact, Execution, Instr, LitmusTest, Outcome, Rel,
};
use litsynth_models::{oracle, Power, Sc, Tso};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// A random relaxed instruction (load/store over ≤3 addresses, or a full
/// fence).
fn instr_strategy(allow_fence: bool) -> impl Strategy<Value = Instr> {
    let upper = if allow_fence { 7 } else { 5 };
    (0u8..=upper).prop_map(|k| match k {
        0..=2 => Instr::load(k),
        3..=5 => Instr::store(k - 3),
        _ => Instr::fence(litsynth_litmus::FenceKind::Full),
    })
}

/// A random multi-threaded program of ≤7 events.
fn test_strategy(allow_fence: bool) -> impl Strategy<Value = LitmusTest> {
    proptest::collection::vec(
        proptest::collection::vec(instr_strategy(allow_fence), 1..=3),
        1..=3,
    )
    .prop_map(|threads| LitmusTest::new("prop", threads))
}

/// A random (program, complete outcome) pair: the outcome of a random
/// candidate execution.
fn test_outcome_strategy(allow_fence: bool) -> impl Strategy<Value = (LitmusTest, Outcome)> {
    (test_strategy(allow_fence), any::<prop::sample::Index>()).prop_map(|(t, idx)| {
        let execs = Execution::enumerate(&t);
        let e = &execs[idx.index(execs.len())];
        let o = e.outcome();
        (t, o)
    })
}

// ---------------------------------------------------------------------
// Canonicalization properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The exact canonical key is invariant under thread permutation.
    #[test]
    fn exact_canonical_key_thread_invariant(
        (t, o) in test_outcome_strategy(true),
        seed in any::<u64>(),
    ) {
        let base = canonical_key_exact(&t, &o);
        // Derive a permutation from the seed deterministically.
        let n = t.num_threads();
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = seed;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let (t2, o2) = apply_thread_order(&t, &o, &order);
        prop_assert_eq!(canonical_key_exact(&t2, &o2), base);
    }

    /// Canonicalization never changes legality: a model's verdict on the
    /// canonical form equals its verdict on the original.
    #[test]
    fn canonicalization_preserves_legality((t, o) in test_outcome_strategy(true)) {
        let tso = Tso::new();
        let before = oracle::observable(&tso, &t, &o);
        let (_, ct, co) = litsynth_litmus::canonicalize_exact(&t, &o);
        let after = oracle::observable(&tso, &ct, &co);
        prop_assert_eq!(before, after);
    }
}

// ---------------------------------------------------------------------
// Relaxation properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Weakening monotonicity: relaxing a test never *un*-observes an
    /// outcome — every relaxation application preserves observability.
    #[test]
    fn relaxations_preserve_observability((t, o) in test_outcome_strategy(true)) {
        let tso = Tso::new();
        if oracle::observable(&tso, &t, &o) {
            for app in applications(&tso, &t) {
                let (t2, o2) = apply(&t, &o, app);
                prop_assert!(
                    oracle::observable(&tso, &t2, &o2),
                    "{} un-observed by {}",
                    t,
                    app.describe()
                );
            }
        }
    }

    /// Model strength chain on the common vocabulary (no deps, no RMWs):
    /// SC-observable ⊆ TSO-observable ⊆ Power-observable.
    #[test]
    fn model_strength_chain((t, o) in test_outcome_strategy(true)) {
        let sc = Sc::new();
        let tso = Tso::new();
        let power = Power::new();
        if oracle::observable(&sc, &t, &o) {
            prop_assert!(oracle::observable(&tso, &t, &o), "SC ⊆ TSO on {}", t);
        }
        if oracle::observable(&tso, &t, &o) {
            prop_assert!(oracle::observable(&power, &t, &o), "TSO ⊆ Power on {}", t);
        }
    }

    /// Every candidate execution's outcome is either observable or
    /// forbidden — and `forbidden` is the exact complement.
    #[test]
    fn forbidden_is_complement_of_observable((t, o) in test_outcome_strategy(true)) {
        let tso = Tso::new();
        prop_assert_eq!(
            oracle::forbidden(&tso, &t, &o),
            !oracle::observable(&tso, &t, &o)
        );
    }
}

// ---------------------------------------------------------------------
// Concrete relation algebra properties
// ---------------------------------------------------------------------

fn rel_strategy(n: usize) -> impl Strategy<Value = Rel> {
    proptest::collection::vec((0..n, 0..n), 0..=n * 2)
        .prop_map(move |pairs| Rel::from_pairs(n, pairs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn compose_is_associative(a in rel_strategy(5), b in rel_strategy(5), c in rel_strategy(5)) {
        prop_assert_eq!(a.compose(&b).compose(&c), a.compose(&b.compose(&c)));
    }

    #[test]
    fn closure_is_idempotent(a in rel_strategy(6)) {
        let tc = a.transitive_closure();
        prop_assert_eq!(tc.transitive_closure(), tc.clone());
        // And the closure is transitive by definition.
        prop_assert!(tc.compose(&tc).is_subset(&tc));
    }

    #[test]
    fn transpose_is_involutive(a in rel_strategy(6)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn de_morgan_for_union_intersection(a in rel_strategy(5), b in rel_strategy(5)) {
        // (a ∪ b)ᵀ = aᵀ ∪ bᵀ and (a ∩ b)ᵀ = aᵀ ∩ bᵀ.
        prop_assert_eq!(a.union(&b).transpose(), a.transpose().union(&b.transpose()));
        prop_assert_eq!(
            a.intersect(&b).transpose(),
            a.transpose().intersect(&b.transpose())
        );
    }

    #[test]
    fn acyclic_iff_no_self_reachability(a in rel_strategy(6)) {
        let tc = a.transitive_closure();
        let has_loop = (0..6).any(|i| tc.contains(i, i));
        prop_assert_eq!(a.is_acyclic(), !has_loop);
    }

    #[test]
    fn permutation_preserves_execution_count(threads in proptest::collection::vec(
        proptest::collection::vec(instr_strategy(false), 1..=2), 1..=3))
    {
        // The candidate-execution count is invariant under thread renaming.
        let t = LitmusTest::new("p", threads);
        let count = Execution::enumerate(&t).len();
        let order: Vec<usize> = (0..t.num_threads()).rev().collect();
        let (t2, _) = apply_thread_order(&t, &Outcome::empty(), &order);
        prop_assert_eq!(Execution::enumerate(&t2).len(), count);
    }
}

// ---------------------------------------------------------------------
// SAT solver properties (via the DIMACS layer)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// CDCL agrees with brute force on random small CNFs.
    #[test]
    fn solver_matches_brute_force(
        clauses in proptest::collection::vec(
            proptest::collection::vec((0usize..6, any::<bool>()), 1..=3),
            1..=24,
        )
    ) {
        use litsynth_sat::{Lit, Solver, Var};
        let brute = (0u32..64).any(|m| {
            clauses.iter().all(|c| {
                c.iter().any(|&(v, pos)| ((m >> v) & 1 == 1) == pos)
            })
        });
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..6).map(|_| s.new_var()).collect();
        for c in &clauses {
            s.add_clause(c.iter().map(|&(v, pos)| Lit::new(vars[v], pos)));
        }
        prop_assert_eq!(s.solve().is_sat(), brute);
    }

    /// DIMACS round-trips preserve satisfiability.
    #[test]
    fn dimacs_roundtrip_preserves_sat(
        clauses in proptest::collection::vec(
            proptest::collection::vec((0usize..5, any::<bool>()), 1..=3),
            1..=16,
        )
    ) {
        use litsynth_sat::dimacs::Cnf;
        use litsynth_sat::{Lit, Var};
        let mut cnf = Cnf::new();
        for c in &clauses {
            cnf.add_clause(c.iter().map(|&(v, pos)| Lit::new(Var::from_index(v), pos)));
        }
        let text = cnf.to_dimacs();
        let back = Cnf::parse_dimacs(&text).unwrap();
        let a = cnf.into_solver().solve().is_sat();
        let b = back.into_solver().solve().is_sat();
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------
// Model differential: symbolic vs concrete evaluation
// ---------------------------------------------------------------------

/// Builds a symbolic context whose every bit is the *constant* matching a
/// concrete execution, evaluates an axiom through `SymAlg`, and compares
/// with `ConcreteAlg`. Because the models are generic over the algebra,
/// this checks the two instantiations agree gate-for-gate.
fn symbolic_equals_concrete<M: litsynth_models::MemoryModel>(
    model: &M,
    t: &LitmusTest,
    e: &Execution,
) -> bool {
    use litsynth_models::{concrete_ctx, ConcreteAlg, Ctx, SymAlg};
    use litsynth_relalg::{Circuit, Matrix1, Matrix2};

    let cctx = concrete_ctx(t, e, &[]);
    let n = t.num_events();
    let lift_set = |s: &litsynth_models::CSet| {
        Matrix1::from_bits(
            (0..n)
                .map(|i| if s.mask >> i & 1 == 1 { Circuit::TRUE } else { Circuit::FALSE })
                .collect(),
        )
    };
    let lift_rel = |r: &Rel| {
        let mut m = Matrix2::empty(n, n);
        for (i, j) in r.pairs() {
            m.set(i, j, Circuit::TRUE);
        }
        m
    };
    let sctx = Ctx::<SymAlg> {
        n,
        read: lift_set(&cctx.read),
        write: lift_set(&cctx.write),
        fence_full: lift_set(&cctx.fence_full),
        fence_lw: lift_set(&cctx.fence_lw),
        fence_acqrel: lift_set(&cctx.fence_acqrel),
        fence_acq: lift_set(&cctx.fence_acq),
        fence_rel: lift_set(&cctx.fence_rel),
        acquire: lift_set(&cctx.acquire),
        release: lift_set(&cctx.release),
        seqcst: lift_set(&cctx.seqcst),
        consume: lift_set(&cctx.consume),
        po: lift_rel(&cctx.po),
        loc: lift_rel(&cctx.loc),
        rf: lift_rel(&cctx.rf),
        co: lift_rel(&cctx.co),
        addr_dep: lift_rel(&cctx.addr_dep),
        data_dep: lift_rel(&cctx.data_dep),
        ctrl_dep: lift_rel(&cctx.ctrl_dep),
        ctrlisync_dep: lift_rel(&cctx.ctrlisync_dep),
        rmw: lift_rel(&cctx.rmw),
        sc: lift_rel(&cctx.sc),
        int: lift_rel(&cctx.int),
        ext: lift_rel(&cctx.ext),
        orphan: lift_set(&cctx.orphan),
    };
    let mut calg = litsynth_models::ConcreteAlg;
    let _: ConcreteAlg = calg;
    let mut salg = SymAlg::new();
    model.axioms().iter().all(|ax| {
        let want = model.axiom(&mut calg, &cctx, ax);
        let bit = model.axiom(&mut salg, &sctx, ax);
        // Constant inputs fold to constants.
        bit == if want { Circuit::TRUE } else { Circuit::FALSE }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For random tests and executions, every model's axioms evaluate the
    /// same through both algebra instantiations.
    #[test]
    fn models_agree_symbolically_and_concretely(
        (t, _) in test_outcome_strategy(true),
        idx in any::<prop::sample::Index>(),
    ) {
        let execs = Execution::enumerate(&t);
        let e = &execs[idx.index(execs.len())];
        prop_assert!(symbolic_equals_concrete(&Sc::new(), &t, e));
        prop_assert!(symbolic_equals_concrete(&Tso::new(), &t, e));
        prop_assert!(symbolic_equals_concrete(&Power::new(), &t, e));
        prop_assert!(symbolic_equals_concrete(&litsynth_models::Power::armv7(), &t, e));
        prop_assert!(symbolic_equals_concrete(&litsynth_models::C11::new(), &t, e));
    }
}
