//! §6.1's headline claim, reproduced: the synthesized suites contain every
//! *minimal* test from the hand-written baselines, and flag the rest as
//! redundant.

use litsynth_bench::report::union_suite;
use litsynth_core::{covering_subtests, minimal_for_some_axiom};
use litsynth_litmus::suites::{classics, owens};
use litsynth_litmus::{canonical_key_exact, Execution, LitmusTest, Outcome};
use litsynth_models::{Power, Scc, Tso};
use std::collections::BTreeMap;

/// Suites record *partial* outcomes (only the components their sources
/// wrote down); the synthesizer emits *complete* ones. A named test is "in
/// the union" when some completion of its outcome is.
fn in_union(
    union: &BTreeMap<String, (LitmusTest, Outcome)>,
    test: &LitmusTest,
    partial: &Outcome,
) -> bool {
    Execution::enumerate(test)
        .iter()
        .map(|e| e.outcome())
        .filter(|full| partial.matches(full))
        .any(|full| union.contains_key(&canonical_key_exact(test, &full)))
}

/// Every minimal forbidden Owens test of ≤5 instructions appears verbatim
/// (canonically) in the synthesized union; every non-minimal one contains a
/// synthesized subtest. Together: the synthesis subsumes the Owens suite.
#[test]
fn owens_suite_subsumed_by_synthesis() {
    let tso = Tso::new();
    let union = union_suite(&tso, 2..=5, 120_000);
    assert!(union.len() > 20);
    for e in owens::suite() {
        // Synthesis uses the Figure 4 pair formalization of RMWs; compare
        // in that form (§5.2's counting convention).
        let (pt, po) = litsynth_litmus::to_rmw_pairs(&e.test, &e.outcome);
        if !e.forbidden || pt.num_events() > 5 {
            continue;
        }
        if minimal_for_some_axiom(&tso, &e.test, &e.outcome) {
            assert!(
                in_union(&union, &pt, &po),
                "minimal Owens test {} missing from union",
                e.test.name()
            );
        } else {
            let covers = covering_subtests(&tso, &e.test, union.values());
            assert!(
                !covers.is_empty(),
                "non-minimal Owens test {} has no covering subtest",
                e.test.name()
            );
        }
    }
}

/// The classic 4-instruction TSO patterns all come out of one bound-4
/// causality query.
#[test]
fn tso_bound_4_reproduces_the_classics() {
    let tso = Tso::new();
    let union = union_suite(&tso, 4..=4, 120_000);
    for (t, o) in [
        classics::mp(),
        classics::lb(),
        classics::s(),
        classics::two_plus_two_w(),
    ] {
        assert!(in_union(&union, &t, &o), "{} missing at bound 4", t.name());
    }
    // SB and R are *allowed* — they must NOT appear.
    for (t, o) in [classics::sb(), classics::r()] {
        assert!(
            !in_union(&union, &t, &o),
            "{} must not be synthesized",
            t.name()
        );
    }
}

/// WRC and WWC appear at bound 5.
#[test]
fn tso_bound_5_reproduces_wrc_and_wwc() {
    let tso = Tso::new();
    let union = union_suite(&tso, 5..=5, 180_000);
    for (t, o) in [classics::wrc(), classics::wwc()] {
        assert!(in_union(&union, &t, &o), "{} missing at bound 5", t.name());
    }
}

/// SCC bound 4: MP with exactly one release and one acquire is synthesized;
/// the Figure 2 flavor is not.
#[test]
fn scc_bound_4_mp_flavors() {
    let scc = Scc::new();
    let union = union_suite(&scc, 4..=4, 120_000);
    let (minimal, o1) = classics::mp_rel_acq();
    assert!(in_union(&union, &minimal, &o1));
    let (fat, o2) = classics::mp_rel2_acq2();
    assert!(!in_union(&union, &fat, &o2));
}

/// Power bound 4: LB+addrs and LB+datas are both synthesized for
/// no_thin_air — the lb+addrs/data distinction §6.2 highlights.
#[test]
fn power_bound_4_lb_dep_variants() {
    let power = Power::new();
    let union = union_suite(&power, 4..=4, 180_000);
    let (t, o) = classics::lb_addrs();
    assert!(in_union(&union, &t, &o), "LB+addrs");
    let (t, o) = classics::lb_datas();
    assert!(in_union(&union, &t, &o), "LB+datas");
    // Plain LB is allowed on Power: not synthesized.
    let (t, o) = classics::lb();
    assert!(!in_union(&union, &t, &o));
}
