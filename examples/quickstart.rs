//! Quickstart: check a litmus test against a model, decide minimality, and
//! synthesize a small suite.
//!
//! Run with `cargo run --release --example quickstart`.

use litsynth_core::{check_minimal, synthesize_axiom, SynthConfig};
use litsynth_litmus::suites::classics;
use litsynth_models::{oracle, Tso};

fn main() {
    let tso = Tso::new();

    // 1. The message-passing test (paper Figure 1) and its weak outcome.
    let (mp, weak) = classics::mp();
    println!("{mp}");
    println!("outcome {}:", weak.display(&mp));
    println!(
        "  under TSO: {}",
        if oracle::forbidden(&tso, &mp, &weak) {
            "forbidden"
        } else {
            "allowed"
        }
    );

    // 2. Is MP minimally synchronized for TSO's causality axiom?
    let verdict = check_minimal(&tso, "causality", &mp, &weak);
    println!("  minimality for causality: {verdict:?}");

    // 3. Store buffering is TSO's signature allowed relaxation.
    let (sb, weak_sb) = classics::sb();
    println!(
        "\nSB outcome {} under TSO: {}",
        weak_sb.display(&sb),
        if oracle::forbidden(&tso, &sb, &weak_sb) {
            "forbidden"
        } else {
            "allowed"
        }
    );

    // 4. Synthesize every minimal 4-instruction test for the causality
    //    axiom — MP, LB, S and 2+2W fall out automatically.
    println!("\nSynthesizing the 4-instruction TSO causality suite…");
    let result = synthesize_axiom(&tso, "causality", &SynthConfig::new(4));
    println!(
        "{} tests in {:.2}s ({} CNF vars, {} clauses):\n",
        result.len(),
        result.elapsed.as_secs_f64(),
        result.cnf_vars,
        result.cnf_clauses
    );
    for (test, outcome) in result.tests.values() {
        println!("{test}  forbidden outcome: {}\n", outcome.display(test));
    }
}
