//! Explore Power's dependency semantics — the subtleties §6.2 highlights:
//! address, data, control, and control+isync dependencies all behave
//! differently, and the synthesizer enumerates every distinct combination.
//!
//! Run with `cargo run --release --example power_deps`.

use litsynth_core::{synthesize_axiom, SynthConfig};
use litsynth_litmus::suites::{cambridge, classics};
use litsynth_litmus::{DepKind, FenceKind};
use litsynth_models::{oracle, Power};

fn main() {
    let power = Power::new();

    // Dependency strength one pattern at a time: MP with a writer-side
    // lwsync and each reader-side ordering mechanism.
    println!("MP with writer-side lwsync; reader-side mechanism varies:\n");
    let reader_side: Vec<(&str, litsynth_litmus::LitmusTest, litsynth_litmus::Outcome)> = {
        let mk = |name: &str, dep: Option<DepKind>| {
            let t = litsynth_litmus::LitmusTest::new(
                name,
                vec![
                    vec![
                        litsynth_litmus::Instr::store(0),
                        litsynth_litmus::Instr::fence(FenceKind::Lightweight),
                        litsynth_litmus::Instr::store(1),
                    ],
                    vec![
                        litsynth_litmus::Instr::load(1),
                        litsynth_litmus::Instr::load(0),
                    ],
                ],
            );
            let t = match dep {
                Some(k) => t.with_dep(1, 0, 1, k),
                None => t,
            };
            let o = classics::oc([(3, Some(2)), (4, None)], []);
            (t, o)
        };
        vec![
            ("plain po", mk("MP+lwsync+po", None).0, mk("x", None).1),
            (
                "addr dep",
                mk("MP+lwsync+addr", Some(DepKind::Addr)).0,
                mk("x", None).1,
            ),
            (
                "ctrl dep",
                mk("MP+lwsync+ctrl", Some(DepKind::Ctrl)).0,
                mk("x", None).1,
            ),
            (
                "ctrl+isync",
                mk("MP+lwsync+ctrlisync", Some(DepKind::CtrlIsync)).0,
                mk("x", None).1,
            ),
        ]
    };
    for (name, t, o) in &reader_side {
        println!(
            "  {name:<11} → {}",
            if oracle::forbidden(&power, t, o) {
                "forbidden (orders R→R)"
            } else {
                "ALLOWED (too weak)"
            }
        );
    }

    // The PPOCA/PPOAA pair: one dependency kind apart, opposite verdicts.
    println!("\nPPOCA vs PPOAA (ctrl vs addr into a forwarded store):");
    for e in cambridge::suite() {
        if e.test.name() == "PPOCA" || e.test.name() == "PPOAA" {
            println!(
                "  {:<6} → {}",
                e.test.name(),
                if oracle::forbidden(&power, &e.test, &e.outcome) {
                    "forbidden"
                } else {
                    "allowed"
                }
            );
        }
    }

    // Synthesis: the no_thin_air axiom's suite is where the dependency
    // variety shows up (§6.2: "a huge number of subtle dependency
    // variants").
    println!("\nSynthesizing Power no_thin_air at 4 instructions…");
    let r = synthesize_axiom(&power, "no_thin_air", &SynthConfig::new(4));
    println!("{} minimal tests; a sample:\n", r.len());
    for (t, o) in r.tests.values().take(6) {
        println!("{t}  forbidden outcome: {}\n", o.display(t));
    }
}
