//! Close the loop: synthesize a suite from the C11 model, then *execute*
//! it as real concurrent Rust code and verify that no forbidden outcome is
//! ever observed — the downstream testing workflow the paper's
//! introduction motivates, end to end in one process.
//!
//! Run with `cargo run --release --example run_native`.

use litsynth_core::{synthesize_axiom, SynthConfig};
use litsynth_models::{MemoryModel, C11};
use litsynth_runner::{executability, run, RunConfig};

fn main() {
    let m = C11::new();
    let mut total = 0usize;
    let mut executed = 0usize;
    let mut weak_seen = 0usize;

    for n in 2..=4 {
        for ax in m.axioms() {
            let suite = synthesize_axiom(&m, ax, &SynthConfig::new(n));
            for (test, outcome) in suite.tests.values() {
                total += 1;
                if executability(test).is_err() {
                    continue; // dependency-based tests have no Rust mapping
                }
                executed += 1;
                let report = run(
                    test,
                    &RunConfig {
                        iterations: 20_000,
                        ..RunConfig::default()
                    },
                )
                .expect("executable test runs");
                let bad = report.count_matching(outcome);
                println!(
                    "{:<30} [{}@{}] outcomes={:<3} forbidden-hits={}",
                    test.threads()
                        .iter()
                        .map(|t| t
                            .iter()
                            .map(|i| i.to_string())
                            .collect::<Vec<_>>()
                            .join("; "))
                        .collect::<Vec<_>>()
                        .join(" ‖ "),
                    ax,
                    n,
                    report.distinct(),
                    bad
                );
                assert_eq!(
                    bad, 0,
                    "forbidden outcome observed natively — model/toolchain bug!"
                );
                if report.distinct() > 1 {
                    weak_seen += 1;
                }
            }
        }
    }
    println!(
        "\n{executed}/{total} synthesized tests executable natively; \
         every forbidden outcome stayed unobserved; \
         {weak_seen} tests showed outcome variety under contention."
    );
}
