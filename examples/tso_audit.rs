//! Audit an existing hand-written suite against the synthesizer — the
//! paper's §6.1 workflow on the Owens x86-TSO suite:
//!
//! * confirm every claimed status against the model oracle,
//! * flag over-synchronized (non-minimal) tests,
//! * show which synthesized minimal test covers each non-minimal one.
//!
//! Run with `cargo run --release --example tso_audit`.

use litsynth_bench::report;
use litsynth_core::{covering_subtests, minimal_for_some_axiom};
use litsynth_litmus::suites::owens;
use litsynth_models::{oracle, Tso};

fn main() {
    let tso = Tso::new();
    println!(
        "Auditing the Owens x86-TSO suite ({} tests)…\n",
        owens::suite().len()
    );

    // Synthesized comparison suite (bounds 2–5 keeps this example quick).
    let union = report::union_suite(&tso, 2..=5, 60_000);
    println!(
        "synthesized TSO-union at bounds 2–5: {} tests\n",
        union.len()
    );

    let mut minimal_count = 0;
    let mut covered_count = 0;
    for entry in owens::suite() {
        let verdict = oracle::forbidden(&tso, &entry.test, &entry.outcome);
        assert_eq!(
            verdict,
            entry.forbidden,
            "suite claim mismatch on {}",
            entry.test.name()
        );
        if !entry.forbidden {
            println!(
                "{:<22} allowed (documents a TSO relaxation)",
                entry.test.name()
            );
            continue;
        }
        if minimal_for_some_axiom(&tso, &entry.test, &entry.outcome) {
            minimal_count += 1;
            println!("{:<22} forbidden, minimal", entry.test.name());
        } else {
            let covers = covering_subtests(&tso, &entry.test, union.values());
            covered_count += 1;
            println!(
                "{:<22} forbidden, NOT minimal — contains {} synthesized subtest(s)",
                entry.test.name(),
                covers.len()
            );
        }
    }
    println!(
        "\nSummary: {minimal_count} minimal, {covered_count} over-synchronized \
         (each covered by smaller synthesized tests)."
    );
}
