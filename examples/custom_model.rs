//! Define a *new* memory model against the `MemoryModel` trait and get a
//! comprehensive litmus suite for free — the paper's core promise
//! ("synthesis specific to any axiomatically-specified memory model").
//!
//! The model here is PSO (partial store order): like TSO it relaxes
//! write→read order, but it also relaxes write→write order, recovering it
//! only with a fence. Compare the synthesized suites: 2+2W is minimal for
//! PSO only in its fenced flavor, while for TSO the plain one suffices.
//!
//! Run with `cargo run --release --example custom_model`.

use litsynth_core::{synthesize_axiom, SynthConfig};
use litsynth_litmus::FenceKind;
use litsynth_models::{oracle, Ctx, MemoryModel, RelAlg, Tso};

/// Partial Store Order: the store buffer is not FIFO.
#[derive(Clone, Copy, Default, Debug)]
struct Pso;

impl MemoryModel for Pso {
    fn name(&self) -> &'static str {
        "PSO"
    }

    fn axioms(&self) -> &'static [&'static str] {
        &["sc_per_loc", "causality"]
    }

    fn axiom<A: RelAlg>(&self, alg: &mut A, ctx: &Ctx<A>, axiom: &str) -> A::B {
        match axiom {
            "sc_per_loc" => {
                let com = ctx.com(alg);
                let pl = ctx.po_loc(alg);
                let u = alg.union(&com, &pl);
                alg.acyclic(&u)
            }
            "causality" => {
                // ppo = po − (W × (R ∪ W)): both store-buffer relaxations.
                let all = alg.set_union(&ctx.read, &ctx.write);
                let relaxed = alg.cross(&ctx.write, &all);
                let ppo = alg.diff(&ctx.po, &relaxed);
                let fence = ctx.fence_order(alg, FenceKind::Full);
                let rfe = ctx.rfe(alg);
                let fr = ctx.fr(alg);
                let u = alg.union_many(&[&rfe, &ctx.co, &fr, &ppo, &fence]);
                alg.acyclic(&u)
            }
            other => panic!("PSO has no axiom {other:?}"),
        }
    }

    fn fence_kinds(&self) -> &'static [FenceKind] {
        &[FenceKind::Full]
    }
}

fn main() {
    let pso = Pso;
    let tso = Tso::new();

    // MP distinguishes the models: forbidden on TSO, observable on PSO
    // (the two stores may drain out of order).
    let (mp, weak) = litsynth_litmus::suites::classics::mp();
    println!(
        "MP weak outcome: TSO {}, PSO {}",
        if oracle::forbidden(&tso, &mp, &weak) {
            "forbids"
        } else {
            "allows"
        },
        if oracle::forbidden(&pso, &mp, &weak) {
            "forbids"
        } else {
            "allows"
        },
    );

    // Synthesize both models' 4-instruction causality suites and diff them.
    let cfg = SynthConfig::new(4);
    let tso_suite = synthesize_axiom(&tso, "causality", &cfg);
    let pso_suite = synthesize_axiom(&pso, "causality", &cfg);
    println!(
        "\n4-instruction causality suites: TSO {} tests, PSO {} tests",
        tso_suite.len(),
        pso_suite.len()
    );

    println!("\nPSO-minimal tests (note the fences where TSO needed none):\n");
    for (t, o) in pso_suite.tests.values() {
        println!("{t}  forbidden outcome: {}\n", o.display(t));
    }
    let cfg5 = SynthConfig::new(5);
    let pso5 = synthesize_axiom(&pso, "causality", &cfg5);
    println!(
        "…and at 5 instructions: {} tests (MP+fence and friends).",
        pso5.len()
    );
}
